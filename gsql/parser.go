package gsql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("gsql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var stmts []Statement
	for {
		for p.peekSym(";") {
			p.next()
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.peekSym(";") && p.peek().kind != tokEOF {
			return nil, p.errHere("expected ';' or end of input after statement")
		}
	}
	return stmts, nil
}

// StatementsComplete reports whether src ends at a statement boundary — a
// ';' outside string literals and comments — so a REPL can decide when to
// stop accumulating input lines and hand the buffer to ExecScript. It runs
// the same lexer the parser uses, so a ';' inside a string never splits a
// statement the way naive text scanning would. Lexically incomplete input
// (an unterminated string literal) reports false; other lexical errors
// report true so executing the buffer surfaces them.
func StatementsComplete(src string) bool {
	toks, err := lex(src)
	if err != nil {
		return !errors.Is(err, errUnterminatedString)
	}
	if len(toks) < 2 { // EOF only: blank or comment-only buffer
		return false
	}
	last := toks[len(toks)-2]
	return last.kind == tokSymbol && last.text == ";"
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	src  string
	toks []token
	pos  int

	// Placeholder numbering state, reset per statement. `?` placeholders
	// auto-number left to right; `$n` placeholders are explicit. Mixing the
	// two styles in one statement is rejected.
	qmarks     int  // `?` placeholders seen so far
	dollarSeen bool // a `$n` placeholder was seen
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errHere(format string, args ...any) error {
	return errAt(p.peek().pos, p.src, "%s (at %q)", fmt.Sprintf(format, args...), p.peek().text)
}

// peekKw reports whether the next token is the given keyword.
func (p *parser) peekKw(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

// peekSym reports whether the next token is the given symbol.
func (p *parser) peekSym(s string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == s
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.next()
		return true
	}
	return false
}

// acceptSym consumes the symbol if present.
func (p *parser) acceptSym(s string) bool {
	if p.peekSym(s) {
		p.next()
		return true
	}
	return false
}

// expectKw consumes the keyword or fails.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errHere("expected %s", kw)
	}
	return nil
}

// expectSym consumes the symbol or fails.
func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errHere("expected %q", s)
	}
	return nil
}

// ident consumes an identifier (keywords are not identifiers).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errHere("expected identifier")
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	p.qmarks, p.dollarSeen = 0, false
	switch t := p.peek(); {
	case t.kind == tokKeyword:
		switch t.text {
		case "SELECT":
			return p.parseSelect()
		case "INSERT":
			return p.parseInsert()
		case "UPDATE":
			return p.parseUpdate()
		case "DELETE":
			return p.parseDelete()
		case "CREATE":
			return p.parseCreateTable()
		case "DROP":
			return p.parseDropTable()
		case "BEGIN":
			p.next()
			return &Begin{}, nil
		case "COMMIT":
			p.next()
			return &Commit{}, nil
		case "ROLLBACK", "ABORT":
			p.next()
			return &Rollback{}, nil
		case "SET":
			return p.parseSet()
		case "SHOW":
			return p.parseShow()
		case "EXPLAIN":
			p.next()
			analyze := p.acceptKw("ANALYZE")
			inner, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			if _, ok := inner.(*Select); !ok {
				return nil, fmt.Errorf("gsql: EXPLAIN supports SELECT only")
			}
			return &Explain{Stmt: inner, Analyze: analyze}, nil
		}
	}
	return nil, p.errHere("expected a statement")
}

// ---- CREATE / DROP ----

// typeNames maps SQL type keywords to normalized names.
var typeNames = map[string]string{
	"BIGINT": "BIGINT", "INT": "BIGINT", "INTEGER": "BIGINT",
	"DOUBLE": "DOUBLE", "FLOAT": "DOUBLE", "DECIMAL": "DOUBLE", "NUMERIC": "DOUBLE",
	"TEXT": "TEXT", "VARCHAR": "TEXT", "CHAR": "TEXT", "TIMESTAMP": "TEXT",
	"BYTES": "BYTES", "BLOB": "BYTES",
	"BOOL": "BOOL", "BOOLEAN": "BOOL",
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		switch {
		case p.peekKw("PRIMARY"):
			p.next()
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			if len(ct.PK) > 0 {
				return nil, fmt.Errorf("gsql: duplicate PRIMARY KEY clause")
			}
			ct.PK = cols
		case p.peekKw("INDEX"):
			p.next()
			ixName, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols, err := p.parseIdentList()
			if err != nil {
				return nil, err
			}
			ct.Indexes = append(ct.Indexes, IndexDef{Name: ixName, Cols: cols})
		default:
			colName, err := p.ident()
			if err != nil {
				return nil, err
			}
			tt := p.peek()
			if tt.kind != tokKeyword {
				return nil, p.errHere("expected a column type")
			}
			norm, ok := typeNames[tt.text]
			if !ok {
				return nil, p.errHere("unsupported column type %s", tt.text)
			}
			p.next()
			// Swallow optional length like VARCHAR(16).
			if p.acceptSym("(") {
				if p.peek().kind != tokNumber {
					return nil, p.errHere("expected a type length")
				}
				p.next()
				if p.acceptSym(",") { // DECIMAL(10,2)
					if p.peek().kind != tokNumber {
						return nil, p.errHere("expected a type scale")
					}
					p.next()
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: colName, Type: norm})
		}
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if p.acceptKw("SHARD") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if ct.ShardBy, err = p.ident(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("WITH") {
		if err := p.expectKw("SYNC"); err != nil {
			return nil, err
		}
		if err := p.expectKw("REPLICATION"); err != nil {
			return nil, err
		}
		ct.Sync = true
	}
	if len(ct.PK) == 0 {
		return nil, fmt.Errorf("gsql: CREATE TABLE %s: PRIMARY KEY is required", name)
	}
	return ct, nil
}

// parseIdentList parses "( ident, ident, ... )".
func (p *parser) parseIdentList() ([]string, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	p.next() // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

// ---- INSERT ----

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.peekSym("(") {
		if ins.Cols, err = p.parseIdentList(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	return ins, nil
}

// ---- SELECT ----

func (p *parser) parseSelect() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	if p.acceptKw("DISTINCT") {
		sel.Distinct = true
	}
	// Select list.
	for {
		item := SelectItem{}
		if p.peekSym("*") {
			p.next()
			item.Expr = &Star{}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.Expr = e
			if p.acceptKw("AS") {
				if item.Alias, err = p.ident(); err != nil {
					return nil, err
				}
			} else if p.peek().kind == tokIdent {
				item.Alias = p.next().text
			}
		}
		sel.Items = append(sel.Items, item)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	if p.acceptKw("INNER") {
		if err := p.expectKw("JOIN"); err != nil {
			return nil, err
		}
		if err := p.parseJoinTail(sel); err != nil {
			return nil, err
		}
	} else if p.acceptKw("JOIN") {
		if err := p.parseJoinTail(sel); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("WHERE") {
		if sel.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		if sel.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			o := OrderItem{}
			if o.Expr, err = p.parseExpr(); err != nil {
				return nil, err
			}
			if p.acceptKw("DESC") {
				o.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, o)
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		if p.peek().kind == tokPlaceholder {
			if sel.LimitExpr, err = p.parsePlaceholder(); err != nil {
				return nil, err
			}
		} else {
			t := p.peek()
			if t.kind != tokNumber {
				return nil, p.errHere("expected a LIMIT count")
			}
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil || n < 0 {
				return nil, p.errHere("invalid LIMIT %q", t.text)
			}
			p.next()
			sel.Limit = n
		}
	}
	if p.acceptKw("OFFSET") {
		if p.peek().kind == tokPlaceholder {
			if sel.OffsetExpr, err = p.parsePlaceholder(); err != nil {
				return nil, err
			}
		} else {
			t := p.peek()
			if t.kind != tokNumber {
				return nil, p.errHere("expected an OFFSET count")
			}
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil || n < 0 {
				return nil, p.errHere("invalid OFFSET %q", t.text)
			}
			p.next()
			sel.Offset = n
		}
	}
	if p.acceptKw("AS") {
		if err := p.expectKw("OF"); err != nil {
			return nil, err
		}
		if err := p.expectKw("STALENESS"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokString {
			return nil, p.errHere("expected a duration string after AS OF STALENESS")
		}
		d, err := time.ParseDuration(t.text)
		if err != nil || d <= 0 {
			return nil, p.errHere("invalid staleness %q", t.text)
		}
		p.next()
		sel.Staleness = d
	}
	return sel, nil
}

func (p *parser) parseJoinTail(sel *Select) error {
	ref, err := p.parseTableRef()
	if err != nil {
		return err
	}
	sel.Join = &ref
	if err := p.expectKw("ON"); err != nil {
		return err
	}
	if sel.On, err = p.parseExpr(); err != nil {
		return err
	}
	return nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	// "AS alias" — but not "AS OF STALENESS", which belongs to the SELECT.
	if p.peekKw("AS") && p.peek2().kind == tokIdent {
		p.next()
		if ref.Alias, err = p.ident(); err != nil {
			return TableRef{}, err
		}
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// ---- UPDATE / DELETE ----

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Col: col, Expr: e})
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		if u.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return u, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.acceptKw("WHERE") {
		if d.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// ---- SET / SHOW ----

func (p *parser) parseSet() (Statement, error) {
	p.next() // SET
	if p.acceptKw("JOIN") {
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind == tokIdent {
			if mode, ok := parseJoinStrategy(t.text); ok {
				p.next()
				return &SetJoin{Mode: mode.Keyword()}, nil
			}
		}
		return nil, p.errHere("expected AUTO, HASH, LOOKUP or NESTLOOP")
	}
	if err := p.expectKw("STALENESS"); err != nil {
		return nil, err
	}
	if err := p.expectSym("="); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, "any") {
		p.next()
		return &SetStaleness{Any: true}, nil
	}
	if t.kind == tokIdent && strings.EqualFold(t.text, "none") {
		p.next()
		return &SetStaleness{None: true}, nil
	}
	if t.kind != tokString {
		return nil, p.errHere("expected a duration string, ANY, or NONE")
	}
	d, err := time.ParseDuration(t.text)
	if err != nil || d <= 0 {
		return nil, p.errHere("invalid staleness %q", t.text)
	}
	p.next()
	return &SetStaleness{Bound: d}, nil
}

func (p *parser) parseShow() (Statement, error) {
	p.next() // SHOW
	switch {
	case p.acceptKw("TABLES"):
		return &Show{What: "TABLES"}, nil
	case p.acceptKw("MODE"):
		return &Show{What: "MODE"}, nil
	case p.acceptKw("REGIONS"):
		return &Show{What: "REGIONS"}, nil
	case p.acceptKw("STALENESS"):
		return &Show{What: "STALENESS"}, nil
	case p.acceptKw("JOIN"):
		return &Show{What: "JOIN"}, nil
	default:
		return nil, p.errHere("expected TABLES, MODE, REGIONS, STALENESS or JOIN")
	}
}

// ---- Expressions ----
//
// Precedence (low to high): OR, AND, NOT, comparison/IS/IN/BETWEEN/LIKE,
// + -, * / %, unary minus, primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Neg: neg}, nil
	}
	// [NOT] IN / BETWEEN / LIKE
	neg := false
	if p.peekKw("NOT") && (p.peek2().text == "IN" || p.peek2().text == "BETWEEN" || p.peek2().text == "LIKE") {
		p.next()
		neg = true
	}
	switch {
	case p.acceptKw("IN"):
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.acceptSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, List: list, Neg: neg}, nil
	case p.acceptKw("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.acceptKw("LIKE"):
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var out Expr = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		if neg {
			out = &UnaryExpr{Op: "NOT", X: out}
		}
		return out, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.peekSym(op) {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekSym("+"):
			op = "+"
		case p.peekSym("-"):
			op = "-"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekSym("*"):
			op = "*"
		case p.peekSym("/"):
			op = "/"
		case p.peekSym("%"):
			op = "%"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals.
		if lit, ok := x.(*Literal); ok {
			switch v := lit.Val.(type) {
			case int64:
				return &Literal{Val: -v}, nil
			case float64:
				return &Literal{Val: -v}, nil
			}
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if !strings.ContainsAny(t.text, ".eE") {
			n, err := strconv.ParseInt(t.text, 10, 64)
			if err == nil {
				return &Literal{Val: n}, nil
			}
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errAt(t.pos, p.src, "malformed number %q", t.text)
		}
		return &Literal{Val: f}, nil
	case tokString:
		p.next()
		return &Literal{Val: t.text}, nil
	case tokPlaceholder:
		return p.parsePlaceholder()
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: nil}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: false}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncCall()
		}
		return nil, p.errHere("unexpected keyword in expression")
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			p.next()
			return &Star{}, nil
		}
		return nil, p.errHere("unexpected symbol in expression")
	case tokIdent:
		// Function call, qualified column, or bare column.
		if p.peek2().kind == tokSymbol && p.peek2().text == "(" {
			return p.parseFuncCall()
		}
		p.next()
		if p.acceptSym(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Name: col}, nil
		}
		return &ColRef{Name: t.text}, nil
	default:
		return nil, p.errHere("unexpected end of expression")
	}
}

// parsePlaceholder consumes a `?` or `$n` parameter token, enforcing a
// single placeholder style per statement.
func (p *parser) parsePlaceholder() (Expr, error) {
	t := p.next()
	if t.text == "" { // `?`: auto-numbered
		if p.dollarSeen {
			return nil, errAt(t.pos, p.src, "cannot mix '?' and '$n' placeholders in one statement")
		}
		p.qmarks++
		return &Placeholder{Idx: p.qmarks}, nil
	}
	if p.qmarks > 0 {
		return nil, errAt(t.pos, p.src, "cannot mix '?' and '$n' placeholders in one statement")
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 1 {
		return nil, errAt(t.pos, p.src, "invalid parameter number $%s", t.text)
	}
	p.dollarSeen = true
	return &Placeholder{Idx: n}, nil
}

// scalarFuncs are the supported non-aggregate functions.
var scalarFuncs = map[string]bool{
	"ABS": true, "LOWER": true, "UPPER": true, "LENGTH": true, "COALESCE": true,
}

func (p *parser) parseFuncCall() (Expr, error) {
	t := p.next()
	name := strings.ToUpper(t.text)
	if !aggregateFuncs[name] && !scalarFuncs[name] {
		return nil, errAt(t.pos, p.src, "unknown function %q", t.text)
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	f := &FuncExpr{Name: name}
	if p.acceptKw("DISTINCT") {
		f.Distinct = true
	}
	if !p.peekSym(")") {
		for {
			if p.peekSym("*") {
				p.next()
				f.Args = append(f.Args, &Star{})
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Args = append(f.Args, e)
			}
			if p.acceptSym(",") {
				continue
			}
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return f, nil
}
