package gsql

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"globaldb"
	"globaldb/gsql/fragment"
	"globaldb/internal/table"
)

// reader is the read surface shared by read-write transactions and
// read-only (replica) queries. Both globaldb.Tx and globaldb.Query
// implement it. The Rows variants stream pages on demand and are what the
// operator pipeline runs on; the materializing variants remain for the
// legacy drain path (kept as the differential-testing oracle and for
// UPDATE/DELETE row collection).
type reader interface {
	Get(ctx context.Context, tableName string, pkVals []any) (globaldb.Row, bool, error)
	ScanPKRows(ctx context.Context, tableName string, pkPrefix []any, o globaldb.ScanOpts) (*globaldb.Rows, error)
	ScanIndexRows(ctx context.Context, tableName, indexName string, prefix []any, o globaldb.ScanOpts) (*globaldb.Rows, error)
	ScanTableRows(ctx context.Context, tableName string, o globaldb.ScanOpts) (*globaldb.Rows, error)
	ScanPK(ctx context.Context, tableName string, pkPrefix []any, limit int) ([]globaldb.Row, error)
	ScanIndex(ctx context.Context, tableName, indexName string, prefix []any, limit int) ([]globaldb.Row, error)
	ScanTable(ctx context.Context, tableName string, limit int) ([]globaldb.Row, error)
}

var (
	_ reader = (*globaldb.Tx)(nil)
	_ reader = (*globaldb.Query)(nil)
)

// rowEnv is the evaluation environment for one combined row (one row per
// FROM table; the inner row is nil while planning inner lookups) plus the
// statement's bound parameter values.
type rowEnv struct {
	tables []*boundTable
	rows   []table.Row
	params []any
}

func (e *rowEnv) colValue(ref *ColRef) (any, error) {
	ti, ci, err := resolveCol(ref, e.tables)
	if err != nil {
		return nil, err
	}
	if ti >= len(e.rows) || e.rows[ti] == nil {
		return nil, fmt.Errorf("gsql: column %s references a row that is not bound yet", ref)
	}
	return e.rows[ti][ci], nil
}

func (e *rowEnv) paramValue(idx int) (any, error) {
	if idx < 1 || idx > len(e.params) {
		return nil, fmt.Errorf("gsql: statement references parameter $%d but %d were bound", idx, len(e.params))
	}
	return e.params[idx-1], nil
}

// execSelect runs a planned SELECT against a reader. Plans with a pushed
// aggregation run DN-partial/CN-final: data nodes fold matching rows into
// per-group partial states and the CN merges them. Everything else runs
// through the streaming operator pipeline (scan, with any pushed filter
// and projection evaluated on the data nodes -> join -> residual filter ->
// project/aggregate/sort/limit). Orderings and aggregates drain the
// pipeline; everything else streams and terminates the scans early once
// LIMIT is satisfied.
func execSelect(ctx context.Context, r reader, p *boundPlan) (*Result, error) {
	if p.push != nil && p.push.agg && !p.noPushdown {
		res, ok, err := execPushedAgg(ctx, r, p)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	it, orderDone, totals, err := buildPipeline(ctx, r, p)
	if err != nil {
		return nil, err
	}
	res, err := finishSelect(ctx, p, it, orderDone)
	it.Close()
	if err != nil {
		return nil, err
	}
	res.Scan = totals.s
	if p.inner != nil {
		res.JoinStrategy = p.chosenJoin.String()
	}
	return res, nil
}

// execPushedAgg runs a grouped SELECT with DN-partial aggregation: each
// shard ships one pre-merged partial state row per group, the coordinator
// merge combines equal groups across shards, and this function finalizes
// the states into SQL aggregate values, then applies HAVING, output
// expressions, ORDER BY and LIMIT exactly as CN-side aggregation would.
// ok=false means the fragment could not be bound for this execution and
// the caller should fall back to the CN-side path.
func execPushedAgg(ctx context.Context, r reader, p *boundPlan) (res *Result, ok bool, err error) {
	pp := p.push
	bf, err := pp.frag.Bind(p.params)
	if err != nil {
		return nil, false, nil
	}
	s := p.outer
	sch := s.tab.schema
	env := &rowEnv{tables: p.tables, params: p.params}
	opts := globaldb.ScanOpts{Range: scanRange(s, env), Pushdown: bf}
	var rows *globaldb.Rows
	switch s.kind {
	case accessFull:
		rows, err = r.ScanTableRows(ctx, sch.Name, opts)
	case accessPKPrefix:
		keyVals := make([]any, len(s.keyExprs))
		for i, e := range s.keyExprs {
			v, evalErr := evalExpr(e, env)
			if evalErr != nil {
				return nil, true, evalErr
			}
			keyVals[i] = v
		}
		keyVals, err = coerceKey(sch, sch.PK[:len(keyVals)], keyVals)
		if err != nil {
			return nil, true, err
		}
		rows, err = r.ScanPKRows(ctx, sch.Name, keyVals, opts)
	default:
		return nil, false, nil
	}
	if err != nil {
		return nil, true, err
	}
	defer rows.Close()

	ngroup := len(pp.groupCols)
	var groups []finishedGroup
	for rows.Next() {
		row := rows.Row()
		if len(row) != ngroup+len(p.aggs) {
			return nil, true, fmt.Errorf("gsql: partial aggregate row has %d values, want %d", len(row), ngroup+len(p.aggs))
		}
		// Rebuild a representative row from the group key so group-column
		// references in outputs, HAVING and ORDER BY resolve.
		rep := make(table.Row, len(sch.Columns))
		for i, ci := range pp.groupCols {
			rep[ci] = row[i]
		}
		vals := make(map[string]any, len(p.aggs))
		for i := range p.aggs {
			st, isState := row[ngroup+i].(fragment.AggState)
			if !isState {
				return nil, true, fmt.Errorf("gsql: partial aggregate slot %d holds %T", i, row[ngroup+i])
			}
			vals[p.aggKeys[i]] = st.Final(pp.frag.Aggs[i].Kind)
		}
		groups = append(groups, finishedGroup{rep: []table.Row{rep}, vals: vals})
	}
	if err := rows.Err(); err != nil {
		return nil, true, err
	}
	// A global aggregate over zero rows still yields one output row, with
	// the same empty-state results as CN-side aggregation.
	if len(groups) == 0 && len(p.groupBy) == 0 {
		vals := make(map[string]any, len(p.aggs))
		for i, fn := range p.aggs {
			vals[p.aggKeys[i]] = newAggState(fn).result()
		}
		groups = append(groups, finishedGroup{rep: nil, vals: vals})
	}
	res, err = finishAggGroups(p, groups)
	if err != nil {
		return nil, true, err
	}
	res.Scan = rows.ScanStats()
	return res, true, nil
}

// execSelectMaterialized is the legacy drain-everything path: every scan
// materializes before the next stage runs. It is retained as the oracle the
// differential tests compare the streaming pipeline against.
func execSelectMaterialized(ctx context.Context, r reader, p *boundPlan) (*Result, error) {
	rows, err := joinRows(ctx, r, p)
	if err != nil {
		return nil, err
	}
	return finishSelect(ctx, p, newSliceBlocks(rows, len(p.tables)), false)
}

// finishSelect consumes the combined-row block stream and produces the
// result: aggregation or projection, then ordering, DISTINCT, OFFSET and
// LIMIT. When there is no ORDER BY — or orderDone says the stream already
// arrives in ORDER BY order (order-preserving scan) — the non-grouped path
// streams and stops pulling as soon as the limit is met: the early
// termination that makes LIMIT k cost O(k·page) rows end to end. ORDER BY
// with a LIMIT keeps only a bounded top-N heap instead of draining and
// sorting the whole input.
func finishSelect(ctx context.Context, p *boundPlan, it blockIter, orderDone bool) (*Result, error) {
	if p.grouped {
		return aggregateRows(ctx, p, it)
	}
	out := &Result{Columns: p.outCols}
	env := rowEnv{tables: p.tables, params: p.params}
	var scr [2]table.Row
	if len(p.orderBy) == 0 || orderDone {
		var seen map[string]bool
		if p.distinct {
			seen = make(map[string]bool)
		}
		skipped := int64(0)
	stream:
		for p.limit < 0 || int64(len(out.Rows)) < p.limit {
			blk, err := it.NextBlock(ctx)
			if err != nil {
				return nil, err
			}
			if blk == nil {
				break
			}
			for i, n := 0, blk.n(); i < n; i++ {
				if p.limit >= 0 && int64(len(out.Rows)) >= p.limit {
					break stream
				}
				env.rows = blk.row(i, scr[:])
				outRow, err := projectEnv(p, &env)
				if err != nil {
					return nil, err
				}
				if seen != nil {
					key := distinctKey(outRow)
					if seen[key] {
						continue
					}
					seen[key] = true
				}
				if skipped < p.offset {
					skipped++
					continue
				}
				out.Rows = append(out.Rows, outRow)
			}
		}
		return out, nil
	}
	// ORDER BY: with a LIMIT (and no DISTINCT, which dedups after the
	// sort), keep only the top limit+offset rows in a bounded heap —
	// O(N log k) comparisons and O(k) memory instead of materializing and
	// fully sorting the input. Otherwise drain, then sort on
	// pre-projection keys. limit+offset >= 0 rejects sentinel-huge limits
	// whose sum overflows (MaxInt64 LIMITs are a common "no limit"
	// idiom); those take the drain path, which never sums them.
	if p.limit >= 0 && !p.distinct && p.limit+p.offset >= 0 {
		top := newTopN(p.orderBy, p.limit+p.offset)
		for {
			blk, err := it.NextBlock(ctx)
			if err != nil {
				return nil, err
			}
			if blk == nil {
				break
			}
			for i, n := 0, blk.n(); i < n; i++ {
				env.rows = blk.row(i, scr[:])
				keys, admit, err := top.tryAdmitKeys(&env)
				if err != nil {
					return nil, err
				}
				if !admit {
					continue
				}
				outRow, err := projectEnv(p, &env)
				if err != nil {
					return nil, err
				}
				if err := top.add(outRow, keys); err != nil {
					return nil, err
				}
			}
		}
		rows, err := top.sorted()
		if err != nil {
			return nil, err
		}
		if p.offset > 0 {
			if int64(len(rows)) <= p.offset {
				rows = nil
			} else {
				rows = rows[p.offset:]
			}
		}
		out.Rows = rows
		return out, nil
	}
	var sortKeys [][]any
	for {
		blk, err := it.NextBlock(ctx)
		if err != nil {
			return nil, err
		}
		if blk == nil {
			break
		}
		for i, n := 0, blk.n(); i < n; i++ {
			env.rows = blk.row(i, scr[:])
			outRow, err := projectEnv(p, &env)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, outRow)
			keys := make([]any, len(p.orderBy))
			for i, o := range p.orderBy {
				v, err := evalExpr(o.Expr, &env)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	if err := sortAndLimit(p, out, sortKeys); err != nil {
		return nil, err
	}
	return out, nil
}

// projectEnv evaluates the output expressions over the environment's
// current combined row. The environment is reused across rows; only the
// output row is freshly allocated (it outlives the pipeline in the
// Result).
func projectEnv(p *boundPlan, env *rowEnv) ([]any, error) {
	outRow := make([]any, len(p.outExprs))
	for i, e := range p.outExprs {
		v, err := evalExpr(e, env)
		if err != nil {
			return nil, err
		}
		outRow[i] = v
	}
	return outRow, nil
}

// joinRows produces the combined (outer[, inner]) rows passing the filter,
// materializing every scan — the legacy path (differential oracle, and row
// collection for UPDATE/DELETE which must materialize before writing).
func joinRows(ctx context.Context, r reader, p *boundPlan) ([][]table.Row, error) {
	// A limit can be pushed into the outer scan only when nothing after it
	// can drop or reorder rows.
	pushLimit := 0
	if p.limit >= 0 && p.filter == nil && p.inner == nil && !p.grouped &&
		len(p.orderBy) == 0 && !p.distinct && p.offset == 0 {
		pushLimit = int(p.limit)
	}
	outerRows, err := scanOne(ctx, r, p, p.outer, nil, pushLimit)
	if err != nil {
		return nil, err
	}
	var combined [][]table.Row
	for _, orow := range outerRows {
		if p.inner == nil {
			cr := []table.Row{orow}
			ok, err := passes(p.filter, p.tables, cr, p.params)
			if err != nil {
				return nil, err
			}
			if ok {
				combined = append(combined, cr)
			}
			continue
		}
		innerRows, err := scanOne(ctx, r, p, p.inner, orow, 0)
		if err != nil {
			return nil, err
		}
		for _, irow := range innerRows {
			cr := []table.Row{orow, irow}
			ok, err := passes(p.filter, p.tables, cr, p.params)
			if err != nil {
				return nil, err
			}
			if ok {
				combined = append(combined, cr)
			}
		}
	}
	return combined, nil
}

func passes(filter Expr, tables []*boundTable, rows []table.Row, params []any) (bool, error) {
	if filter == nil {
		return true, nil
	}
	v, err := evalExpr(filter, &rowEnv{tables: tables, rows: rows, params: params})
	if err != nil {
		return false, err
	}
	return truthy(v)
}

// scanOne executes one table scan. outerRow, when non-nil, binds outer
// column references in the scan's key expressions (join inner lookups).
func scanOne(ctx context.Context, r reader, p *boundPlan, s *tableScan, outerRow table.Row, limit int) ([]table.Row, error) {
	env := &rowEnv{tables: p.tables, params: p.params}
	if outerRow != nil {
		env.rows = []table.Row{outerRow}
	}
	keyVals := make([]any, len(s.keyExprs))
	for i, e := range s.keyExprs {
		v, err := evalExpr(e, env)
		if err != nil {
			return nil, err
		}
		keyVals[i] = v
	}
	name := s.tab.schema.Name
	switch s.kind {
	case accessPoint:
		keyVals, err := coerceKey(s.tab.schema, s.tab.schema.PK, keyVals)
		if err != nil {
			return nil, err
		}
		row, found, err := r.Get(ctx, name, keyVals)
		if err != nil || !found {
			return nil, err
		}
		return []table.Row{row}, nil
	case accessPKPrefix:
		keyVals, err := coerceKey(s.tab.schema, s.tab.schema.PK[:len(keyVals)], keyVals)
		if err != nil {
			return nil, err
		}
		return r.ScanPK(ctx, name, keyVals, limit)
	case accessIndex:
		ix, err := findIndex(s.tab.schema, s.index)
		if err != nil {
			return nil, err
		}
		keyVals, err := coerceKey(s.tab.schema, ix.Cols[:len(keyVals)], keyVals)
		if err != nil {
			return nil, err
		}
		return r.ScanIndex(ctx, name, s.index, keyVals, limit)
	case accessFull:
		return r.ScanTable(ctx, name, limit)
	default:
		return nil, fmt.Errorf("gsql: unknown access kind %v", s.kind)
	}
}

func findIndex(sch *table.Schema, name string) (table.Index, error) {
	for _, ix := range sch.Indexes {
		if ix.Name == name {
			return ix, nil
		}
	}
	return table.Index{}, fmt.Errorf("gsql: table %s has no index %q", sch.Name, name)
}

// coerceKey adapts evaluated key values to the column kinds at the given
// positions (int64 literals bind to DOUBLE columns, etc.).
func coerceKey(sch *table.Schema, cols []int, vals []any) ([]any, error) {
	out := make([]any, len(vals))
	for i, v := range vals {
		cv, err := coerceValue(sch, cols[i], v)
		if err != nil {
			return nil, err
		}
		out[i] = cv
	}
	return out, nil
}

// coerceValue converts v to the kind of the schema column, or fails.
func coerceValue(sch *table.Schema, col int, v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	kind := sch.Columns[col].Kind
	switch kind {
	case table.Int64:
		if x, ok := v.(int64); ok {
			return x, nil
		}
		if f, ok := v.(float64); ok && f == float64(int64(f)) {
			return int64(f), nil
		}
	case table.Float64:
		if x, ok := v.(float64); ok {
			return x, nil
		}
		if x, ok := v.(int64); ok {
			return float64(x), nil
		}
	case table.String:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case table.Bytes:
		if x, ok := v.([]byte); ok {
			return x, nil
		}
		if x, ok := v.(string); ok {
			return []byte(x), nil
		}
	case table.Bool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("%w: %T for %s column %s", ErrType, v, kind, sch.Columns[col].Name)
}

// ---- Aggregation ----

// aggState accumulates one aggregate function over a group.
type aggState struct {
	fn       *FuncExpr
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	min, max any
	distinct map[string]bool
}

func newAggState(fn *FuncExpr) *aggState {
	st := &aggState{fn: fn}
	if fn.Distinct {
		st.distinct = make(map[string]bool)
	}
	return st
}

func (st *aggState) add(env evalEnv) error {
	if len(st.fn.Args) == 1 {
		if _, isStar := st.fn.Args[0].(*Star); isStar {
			if st.fn.Name != "COUNT" {
				return fmt.Errorf("gsql: %s(*) is not valid", st.fn.Name)
			}
			st.count++
			return nil
		}
	}
	if len(st.fn.Args) != 1 {
		return fmt.Errorf("gsql: %s takes one argument", st.fn.Name)
	}
	v, err := evalExpr(st.fn.Args[0], env)
	if err != nil {
		return err
	}
	if v == nil {
		return nil // SQL aggregates skip NULLs
	}
	if st.distinct != nil {
		key := fmt.Sprintf("%T:%v", v, v)
		if st.distinct[key] {
			return nil
		}
		st.distinct[key] = true
	}
	st.count++
	switch st.fn.Name {
	case "COUNT":
		return nil
	case "SUM", "AVG":
		switch x := v.(type) {
		case int64:
			st.sumI += x
			st.sumF += float64(x)
		case float64:
			st.isFloat = true
			st.sumF += x
		default:
			return fmt.Errorf("%w: %s(%T)", ErrType, st.fn.Name, v)
		}
		return nil
	case "MIN":
		if st.min == nil {
			st.min = v
			return nil
		}
		c, err := compare(v, st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.min = v
		}
		return nil
	case "MAX":
		if st.max == nil {
			st.max = v
			return nil
		}
		c, err := compare(v, st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.max = v
		}
		return nil
	default:
		return fmt.Errorf("gsql: unknown aggregate %q", st.fn.Name)
	}
}

func (st *aggState) result() any {
	switch st.fn.Name {
	case "COUNT":
		return st.count
	case "SUM":
		if st.count == 0 {
			return nil
		}
		if st.isFloat {
			return st.sumF
		}
		return st.sumI
	case "AVG":
		if st.count == 0 {
			return nil
		}
		return st.sumF / float64(st.count)
	case "MIN":
		return st.min
	case "MAX":
		return st.max
	default:
		return nil
	}
}

// aggEnv evaluates final expressions with aggregate slots substituted and
// group keys resolvable through a representative row.
type aggEnv struct {
	base *rowEnv
	vals map[string]any // FuncExpr.String() -> aggregate result
}

func (e *aggEnv) colValue(ref *ColRef) (any, error) { return e.base.colValue(ref) }
func (e *aggEnv) paramValue(idx int) (any, error)   { return e.base.paramValue(idx) }

// evalWithAggs evaluates e, substituting aggregate results.
func evalWithAggs(e Expr, env *aggEnv) (any, error) {
	if f, ok := e.(*FuncExpr); ok && aggregateFuncs[f.Name] {
		v, ok := env.vals[f.String()]
		if !ok {
			return nil, fmt.Errorf("gsql: aggregate %s has no computed slot", f)
		}
		return v, nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		if x.Op == "AND" || x.Op == "OR" {
			// Rebuild with substituted children; cheap and correct.
			lv, err := evalWithAggs(x.Left, env)
			if err != nil {
				return nil, err
			}
			rv, err := evalWithAggs(x.Right, env)
			if err != nil {
				return nil, err
			}
			return evalBinary(&BinaryExpr{Op: x.Op, Left: &Literal{Val: lv}, Right: &Literal{Val: rv}}, env)
		}
		lv, err := evalWithAggs(x.Left, env)
		if err != nil {
			return nil, err
		}
		rv, err := evalWithAggs(x.Right, env)
		if err != nil {
			return nil, err
		}
		return evalBinary(&BinaryExpr{Op: x.Op, Left: &Literal{Val: lv}, Right: &Literal{Val: rv}}, env)
	case *UnaryExpr:
		v, err := evalWithAggs(x.X, env)
		if err != nil {
			return nil, err
		}
		return evalExpr(&UnaryExpr{Op: x.Op, X: &Literal{Val: v}}, env)
	case *IsNullExpr:
		v, err := evalWithAggs(x.X, env)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Neg, nil
	default:
		return evalExpr(e, env)
	}
}

// finishedGroup is one group ready for the CN-final phase: a
// representative row for group-key references and the computed aggregate
// values keyed by the aggregate call's text. Both the CN-side aggregation
// and the DN-partial merge path converge on this shape, so HAVING, output
// evaluation, ORDER BY and LIMIT are shared verbatim between them.
type finishedGroup struct {
	rep  []table.Row
	vals map[string]any
}

// aggregateRows groups the combined-row block stream and computes
// aggregate outputs — the CN-side aggregation path. The hash probe is a
// true row edge: each block's rows feed the group map one at a time
// through a reused environment, but the pipeline below still moves whole
// blocks. Aggregation is a pipeline breaker — it consumes the stream to
// the end — but still holds only per-group state, never the input rows
// (each group retains one cloned representative row).
func aggregateRows(ctx context.Context, p *boundPlan, it blockIter) (*Result, error) {
	type group struct {
		rep    []table.Row // representative row for group-key evaluation
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string

	env := rowEnv{tables: p.tables, params: p.params}
	var scr [2]table.Row
	keyVals := make([]any, len(p.groupBy))
	for {
		blk, err := it.NextBlock(ctx)
		if err != nil {
			return nil, err
		}
		if blk == nil {
			break
		}
		for i, n := 0, blk.n(); i < n; i++ {
			env.rows = blk.row(i, scr[:])
			for gi, g := range p.groupBy {
				v, err := evalExpr(g, &env)
				if err != nil {
					return nil, err
				}
				keyVals[gi] = v
			}
			key := distinctKey(keyVals)
			grp, ok := groups[key]
			if !ok {
				grp = &group{rep: append([]table.Row(nil), env.rows...)}
				for _, fn := range p.aggs {
					grp.states = append(grp.states, newAggState(fn))
				}
				groups[key] = grp
				order = append(order, key)
			}
			for _, st := range grp.states {
				if err := st.add(&env); err != nil {
					return nil, err
				}
			}
		}
	}

	// A global aggregate over zero rows still yields one output row.
	if len(groups) == 0 && len(p.groupBy) == 0 {
		grp := &group{rep: nil}
		for _, fn := range p.aggs {
			grp.states = append(grp.states, newAggState(fn))
		}
		groups[""] = grp
		order = append(order, "")
	}

	finished := make([]finishedGroup, 0, len(order))
	for _, key := range order {
		grp := groups[key]
		vals := make(map[string]any, len(grp.states))
		for i, st := range grp.states {
			vals[p.aggKeys[i]] = st.result()
		}
		finished = append(finished, finishedGroup{rep: grp.rep, vals: vals})
	}
	return finishAggGroups(p, finished)
}

// finishAggGroups runs the CN-final phase over computed groups: HAVING,
// output expressions with aggregate slots substituted, ORDER BY keys, then
// sort/DISTINCT/OFFSET/LIMIT.
func finishAggGroups(p *boundPlan, groups []finishedGroup) (*Result, error) {
	out := &Result{Columns: p.outCols}
	var sortKeys [][]any
	for _, grp := range groups {
		env := &aggEnv{base: &rowEnv{tables: p.tables, rows: grp.rep, params: p.params}, vals: grp.vals}
		if p.having != nil {
			hv, err := evalWithAggs(p.having, env)
			if err != nil {
				return nil, err
			}
			ok, err := truthy(hv)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		outRow := make([]any, len(p.outExprs))
		for i, e := range p.outExprs {
			v, err := evalWithAggs(e, env)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		out.Rows = append(out.Rows, outRow)
		if len(p.orderBy) > 0 {
			keys := make([]any, len(p.orderBy))
			for i, o := range p.orderBy {
				v, err := evalWithAggs(o.Expr, env)
				if err != nil {
					return nil, err
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
		}
	}
	if err := sortAndLimit(p, out, sortKeys); err != nil {
		return nil, err
	}
	return out, nil
}

// sortAndLimit orders result rows by the pre-computed sort keys (one key
// vector per row, evaluated on the pre-projection rows so ORDER BY may
// reference any column) and applies LIMIT.
func sortAndLimit(p *boundPlan, res *Result, sortKeys [][]any) error {
	if len(p.orderBy) > 0 && len(res.Rows) > 1 {
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
			for i, o := range p.orderBy {
				c, err := compareNullable(ka[i], kb[i])
				if err != nil && sortErr == nil {
					sortErr = err
				}
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return sortErr
		}
		sorted := make([][]any, len(res.Rows))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if p.distinct {
		seen := make(map[string]bool, len(res.Rows))
		kept := res.Rows[:0]
		for _, row := range res.Rows {
			key := distinctKey(row)
			if seen[key] {
				continue
			}
			seen[key] = true
			kept = append(kept, row)
		}
		res.Rows = kept
	}
	if p.offset > 0 {
		if int64(len(res.Rows)) <= p.offset {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[p.offset:]
		}
	}
	if p.limit >= 0 && int64(len(res.Rows)) > p.limit {
		res.Rows = res.Rows[:p.limit]
	}
	return nil
}

// distinctKey builds a collision-free dedup key for DISTINCT rows and
// GROUP BY tuples: each value is type-tagged (so NULL never merges with
// the text "<nil>") and length-prefixed (so no embedded byte in a TEXT
// value can shift tuple boundaries and make distinct tuples collide).
func distinctKey(row []any) string {
	var sb strings.Builder
	for _, v := range row {
		part := fmt.Sprintf("%T:%v", v, v)
		fmt.Fprintf(&sb, "%d:%s;", len(part), part)
	}
	return sb.String()
}

// compareNullable orders values with NULLs first.
func compareNullable(a, b any) (int, error) {
	switch {
	case a == nil && b == nil:
		return 0, nil
	case a == nil:
		return -1, nil
	case b == nil:
		return 1, nil
	}
	return compare(a, b)
}
