package gsql

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"globaldb"
	"globaldb/internal/ts"
)

var bg = context.Background()

// benchClusterConfig is the shared fast three-city test topology.
func benchClusterConfig() globaldb.Config {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	return cfg
}

func openBenchDB(cfg globaldb.Config) (*globaldb.DB, error) { return globaldb.Open(cfg) }

// openSQL builds a fast in-process three-city cluster with a SQL session
// homed in Xi'an, pre-loaded with a small order/line dataset.
func openSQL(t *testing.T) *Session {
	t.Helper()
	db, err := globaldb.Open(benchClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	s, err := Connect(db, "xian")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func exec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(bg, sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func execErr(t *testing.T, s *Session, sql string) error {
	t.Helper()
	_, err := s.Exec(bg, sql)
	if err == nil {
		t.Fatalf("Exec(%q) succeeded, want error", sql)
	}
	return err
}

func loadOrders(t *testing.T, s *Session) {
	t.Helper()
	exec(t, s, `CREATE TABLE orders (
		w_id BIGINT, o_id BIGINT, c_id BIGINT, amount DOUBLE, status TEXT,
		PRIMARY KEY (w_id, o_id),
		INDEX orders_cust (w_id, c_id)
	) SHARD BY w_id`)
	exec(t, s, `CREATE TABLE lines (
		w_id BIGINT, o_id BIGINT, n BIGINT, item TEXT, qty BIGINT,
		PRIMARY KEY (w_id, o_id, n)
	) SHARD BY w_id`)
	exec(t, s, `INSERT INTO orders VALUES
		(1, 1, 10, 25.0, 'open'),
		(1, 2, 10, 75.5, 'shipped'),
		(1, 3, 11, 12.25, 'open'),
		(2, 1, 12, 100.0, 'open'),
		(2, 2, 12, 50.0, 'cancelled'),
		(3, 1, 13, 5.0, 'open')`)
	exec(t, s, `INSERT INTO lines VALUES
		(1, 1, 1, 'widget', 2),
		(1, 1, 2, 'gadget', 1),
		(1, 2, 1, 'widget', 5),
		(2, 1, 1, 'gizmo', 3),
		(3, 1, 1, 'widget', 1)`)
}

func TestExecCreateInsertSelect(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT o_id, amount FROM orders WHERE w_id = 1 AND o_id = 2")
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(2) || res.Rows[0][1] != 75.5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "o_id" || res.Columns[1] != "amount" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestExecSelectStarAndFilter(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT * FROM orders WHERE status = 'open' AND amount >= 10")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Columns) != 5 {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestExecOrderByLimit(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT o_id, amount FROM orders WHERE w_id = 1 ORDER BY amount DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != 75.5 || res.Rows[1][1] != 25.0 {
		t.Fatalf("order wrong: %v", res.Rows)
	}
}

func TestExecOrderByNonSelectedColumn(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	// ORDER BY references a column that is not in the select list.
	res := exec(t, s, "SELECT o_id FROM orders WHERE w_id = 1 ORDER BY amount DESC")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// amounts: o2=75.5, o1=25.0, o3=12.25
	if res.Rows[0][0] != int64(2) || res.Rows[1][0] != int64(1) || res.Rows[2][0] != int64(3) {
		t.Fatalf("order: %v", res.Rows)
	}
}

func TestExecOrderByStarSelect(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT * FROM orders ORDER BY w_id DESC, o_id")
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(3) || res.Rows[5][0] != int64(1) {
		t.Fatalf("order: %v", res.Rows)
	}
}

func TestExecGroupOrderByAggregate(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	// ORDER BY an aggregate that is not in the select list.
	res := exec(t, s, "SELECT w_id FROM orders GROUP BY w_id ORDER BY SUM(amount) DESC")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// sums: w2=150, w1=112.75, w3=5
	if res.Rows[0][0] != int64(2) || res.Rows[1][0] != int64(1) || res.Rows[2][0] != int64(3) {
		t.Fatalf("order: %v", res.Rows)
	}
}

func TestExecDistinct(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT DISTINCT c_id FROM orders ORDER BY c_id")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(10) || res.Rows[3][0] != int64(13) {
		t.Fatalf("distinct values: %v", res.Rows)
	}
	// DISTINCT on the status column collapses duplicates.
	res2 := exec(t, s, "SELECT DISTINCT status FROM orders")
	if len(res2.Rows) != 3 {
		t.Fatalf("statuses = %v", res2.Rows)
	}
}

func TestExecOffset(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	all := exec(t, s, "SELECT o_id FROM orders WHERE w_id = 1 ORDER BY o_id")
	paged := exec(t, s, "SELECT o_id FROM orders WHERE w_id = 1 ORDER BY o_id LIMIT 1 OFFSET 1")
	if len(paged.Rows) != 1 || paged.Rows[0][0] != all.Rows[1][0] {
		t.Fatalf("offset page = %v, all = %v", paged.Rows, all.Rows)
	}
	// Offset past the end yields nothing.
	empty := exec(t, s, "SELECT o_id FROM orders WHERE w_id = 1 ORDER BY o_id OFFSET 99")
	if len(empty.Rows) != 0 {
		t.Fatalf("past-end offset = %v", empty.Rows)
	}
}

func TestExecAggregates(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM orders")
	row := res.Rows[0]
	if row[0] != int64(6) {
		t.Fatalf("count = %v", row[0])
	}
	if row[1] != 267.75 {
		t.Fatalf("sum = %v", row[1])
	}
	if row[2] != 5.0 || row[3] != 100.0 {
		t.Fatalf("min/max = %v %v", row[2], row[3])
	}
	if fmt.Sprintf("%.4f", row[4]) != "44.6250" {
		t.Fatalf("avg = %v", row[4])
	}
}

func TestExecGroupByHaving(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, `SELECT w_id, COUNT(*) AS n, SUM(amount) AS total
		FROM orders GROUP BY w_id HAVING COUNT(*) > 1 ORDER BY w_id`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(1) || res.Rows[0][1] != int64(3) {
		t.Fatalf("group 1: %v", res.Rows[0])
	}
	if res.Rows[1][0] != int64(2) || res.Rows[1][2] != 150.0 {
		t.Fatalf("group 2: %v", res.Rows[1])
	}
}

func TestExecCountDistinct(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT COUNT(DISTINCT c_id) FROM orders")
	if res.Rows[0][0] != int64(4) {
		t.Fatalf("distinct customers = %v", res.Rows[0][0])
	}
}

func TestExecAggregateOverEmptyInput(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT COUNT(*), SUM(amount) FROM orders WHERE w_id = 99")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(0) || res.Rows[0][1] != nil {
		t.Fatalf("empty agg = %v", res.Rows[0])
	}
	// Grouped aggregate over empty input yields no rows.
	res2 := exec(t, s, "SELECT w_id, COUNT(*) FROM orders WHERE w_id = 99 GROUP BY w_id")
	if len(res2.Rows) != 0 {
		t.Fatalf("grouped empty = %v", res2.Rows)
	}
}

func TestExecJoin(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, `SELECT o.o_id, l.item, l.qty
		FROM orders o JOIN lines l ON l.w_id = o.w_id AND l.o_id = o.o_id
		WHERE o.w_id = 1 ORDER BY o.o_id, l.item`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != "gadget" || res.Rows[1][1] != "widget" || res.Rows[2][1] != "widget" {
		t.Fatalf("join rows: %v", res.Rows)
	}
}

func TestExecJoinAggregate(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, `SELECT l.item, SUM(l.qty) AS total
		FROM orders o JOIN lines l ON l.w_id = o.w_id AND l.o_id = o.o_id
		WHERE o.status = 'open'
		GROUP BY l.item ORDER BY l.item`)
	// open orders: (1,1), (1,3), (2,1), (3,1) — lines exist for (1,1), (2,1), (3,1).
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// gadget: 1 (order 1,1); gizmo: 3 (order 2,1); widget: 2 + 1 = 3.
	if res.Rows[0][0] != "gadget" || res.Rows[0][1] != int64(1) {
		t.Fatalf("gadget: %v", res.Rows[0])
	}
	if res.Rows[2][0] != "widget" || res.Rows[2][1] != int64(3) {
		t.Fatalf("widget: %v", res.Rows[2])
	}
}

func TestExecUpdate(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "UPDATE orders SET amount = amount + 10, status = 'bumped' WHERE w_id = 1 AND o_id = 1")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	check := exec(t, s, "SELECT amount, status FROM orders WHERE w_id = 1 AND o_id = 1")
	if check.Rows[0][0] != 35.0 || check.Rows[0][1] != "bumped" {
		t.Fatalf("after update: %v", check.Rows)
	}
	// PK and indexed columns are immutable.
	execErr(t, s, "UPDATE orders SET o_id = 9 WHERE w_id = 1")
	execErr(t, s, "UPDATE orders SET c_id = 9 WHERE w_id = 1")
}

func TestExecDelete(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "DELETE FROM orders WHERE status = 'cancelled'")
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	left := exec(t, s, "SELECT COUNT(*) FROM orders")
	if left.Rows[0][0] != int64(5) {
		t.Fatalf("rows left = %v", left.Rows[0][0])
	}
}

func TestExecExplicitTransaction(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	exec(t, s, "BEGIN")
	if !s.InTxn() {
		t.Fatal("expected open transaction")
	}
	exec(t, s, "INSERT INTO orders VALUES (4, 1, 20, 1.0, 'open')")
	// Visible inside the transaction.
	res := exec(t, s, "SELECT COUNT(*) FROM orders WHERE w_id = 4")
	if res.Rows[0][0] != int64(1) {
		t.Fatalf("own write invisible: %v", res.Rows)
	}
	exec(t, s, "ROLLBACK")
	res2 := exec(t, s, "SELECT COUNT(*) FROM orders WHERE w_id = 4")
	if res2.Rows[0][0] != int64(0) {
		t.Fatalf("rollback leaked: %v", res2.Rows)
	}

	exec(t, s, "BEGIN")
	exec(t, s, "UPDATE orders SET amount = 0 WHERE w_id = 3 AND o_id = 1")
	exec(t, s, "COMMIT")
	res3 := exec(t, s, "SELECT amount FROM orders WHERE w_id = 3 AND o_id = 1")
	if res3.Rows[0][0] != 0.0 {
		t.Fatalf("commit lost: %v", res3.Rows)
	}
}

func TestExecTransactionStateErrors(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	execErr(t, s, "COMMIT")
	execErr(t, s, "ROLLBACK")
	exec(t, s, "BEGIN")
	execErr(t, s, "BEGIN")
	execErr(t, s, "CREATE TABLE x (a BIGINT, PRIMARY KEY (a))")
	execErr(t, s, "DROP TABLE orders")
	exec(t, s, "ROLLBACK")
}

func TestExecReplicaReadsAndStaleness(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	// The default is fresh primary reads.
	if res := exec(t, s, "SHOW STALENESS"); res.Rows[0][0] != "NONE" {
		t.Fatalf("default staleness = %v", res.Rows)
	}
	if res := exec(t, s, "SELECT COUNT(*) FROM orders"); res.OnReplicas {
		t.Fatal("default read must hit primaries")
	}
	// SET STALENESS = ANY routes to replicas once the RCP catches up;
	// retry briefly since replication is asynchronous.
	exec(t, s, "SET STALENESS = ANY")
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := s.Exec(bg, "SELECT COUNT(*) FROM orders")
		if err == nil && res.OnReplicas && res.Rows[0][0] == int64(6) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica read did not catch up: %v err=%v", res, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Session staleness bound.
	exec(t, s, "SET STALENESS = '10s'")
	if res := exec(t, s, "SHOW STALENESS"); res.Rows[0][0] != "10s" {
		t.Fatalf("staleness = %v", res.Rows)
	}
	res := exec(t, s, "SELECT COUNT(*) FROM orders")
	if res.Rows[0][0] != int64(6) {
		t.Fatalf("bounded read: %v", res.Rows)
	}
	// Back to primary reads; a per-statement bound still reads replicas.
	exec(t, s, "SET STALENESS = NONE")
	res2 := exec(t, s, "SELECT COUNT(*) FROM orders AS OF STALENESS '10s'")
	if res2.Rows[0][0] != int64(6) {
		t.Fatalf("statement-bounded read: %v", res2.Rows)
	}
	if !res2.OnReplicas {
		t.Fatal("AS OF STALENESS must read replicas")
	}
}

func TestExecShow(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	tables := exec(t, s, "SHOW TABLES")
	if len(tables.Rows) != 2 {
		t.Fatalf("tables = %v", tables.Rows)
	}
	mode := exec(t, s, "SHOW MODE")
	if len(mode.Rows) != 1 {
		t.Fatalf("mode = %v", mode.Rows)
	}
	regions := exec(t, s, "SHOW REGIONS")
	if len(regions.Rows) != 3 {
		t.Fatalf("regions = %v", regions.Rows)
	}
}

func TestExecExplain(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "EXPLAIN SELECT * FROM orders WHERE w_id = 1 AND o_id = 2")
	text := ""
	for _, r := range res.Rows {
		text += r[0].(string) + "\n"
	}
	if !strings.Contains(text, "point-get") {
		t.Fatalf("explain:\n%s", text)
	}
	res2 := exec(t, s, "EXPLAIN SELECT * FROM orders WHERE w_id = 1 AND c_id = 10")
	text2 := ""
	for _, r := range res2.Rows {
		text2 += r[0].(string) + "\n"
	}
	if !strings.Contains(text2, "index-scan") || !strings.Contains(text2, "orders_cust") {
		t.Fatalf("explain:\n%s", text2)
	}
}

func TestExecExplainRangePushdown(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "EXPLAIN SELECT * FROM orders WHERE w_id = 1 AND o_id > 1 AND o_id <= 3")
	text := ""
	for _, r := range res.Rows {
		text += r[0].(string) + "\n"
	}
	if !strings.Contains(text, "pk-prefix-scan") || !strings.Contains(text, "range (o_id > 1, o_id <= 3)") {
		t.Fatalf("explain must show the pushed range:\n%s", text)
	}
	// The pushed range narrows the rows actually returned by the scan.
	res2 := exec(t, s, "SELECT o_id FROM orders WHERE w_id = 1 AND o_id > 1 AND o_id <= 3 ORDER BY o_id")
	if len(res2.Rows) != 2 || res2.Rows[0][0] != int64(2) || res2.Rows[1][0] != int64(3) {
		t.Fatalf("range rows: %v", res2.Rows)
	}
}

func TestExecIndexEquivalence(t *testing.T) {
	// The index path and the full-scan path must return the same rows.
	s := openSQL(t)
	loadOrders(t, s)
	byIndex := exec(t, s, "SELECT o_id FROM orders WHERE w_id = 1 AND c_id = 10 ORDER BY o_id")
	byScan := exec(t, s, "SELECT o_id FROM orders WHERE w_id + 0 = 1 AND c_id = 10 ORDER BY o_id")
	if len(byIndex.Rows) != 2 || len(byScan.Rows) != len(byIndex.Rows) {
		t.Fatalf("index %v scan %v", byIndex.Rows, byScan.Rows)
	}
	for i := range byIndex.Rows {
		if byIndex.Rows[i][0] != byScan.Rows[i][0] {
			t.Fatalf("row %d: %v vs %v", i, byIndex.Rows[i], byScan.Rows[i])
		}
	}
}

func TestExecInsertColumnListAndNulls(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	exec(t, s, "INSERT INTO orders (w_id, o_id, c_id) VALUES (5, 1, 50)")
	res := exec(t, s, "SELECT amount, status FROM orders WHERE w_id = 5 AND o_id = 1")
	if res.Rows[0][0] != nil || res.Rows[0][1] != nil {
		t.Fatalf("missing columns must be NULL: %v", res.Rows)
	}
	res2 := exec(t, s, "SELECT COUNT(*) FROM orders WHERE status IS NULL")
	if res2.Rows[0][0] != int64(1) {
		t.Fatalf("IS NULL: %v", res2.Rows)
	}
}

func TestExecIntToDoubleCoercion(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	// amount is DOUBLE; inserting and comparing with integer literals works.
	exec(t, s, "INSERT INTO orders VALUES (6, 1, 60, 42, 'open')")
	res := exec(t, s, "SELECT amount FROM orders WHERE w_id = 6 AND o_id = 1")
	if res.Rows[0][0] != 42.0 {
		t.Fatalf("coerced amount = %v (%T)", res.Rows[0][0], res.Rows[0][0])
	}
	res2 := exec(t, s, "SELECT COUNT(*) FROM orders WHERE amount = 42")
	if res2.Rows[0][0] != int64(1) {
		t.Fatalf("int/double compare: %v", res2.Rows)
	}
}

func TestExecErrors(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	execErr(t, s, "SELECT * FROM ghosts")
	execErr(t, s, "INSERT INTO orders (w_id) VALUES (1, 2)")
	execErr(t, s, "INSERT INTO orders (nope) VALUES (1)")
	execErr(t, s, "UPDATE orders SET nope = 1")
	execErr(t, s, "SELECT nope FROM orders")
	execErr(t, s, "INSERT INTO orders VALUES (1, 1, 1, 'not-a-number', 'x')")
}

func TestExecDropTable(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	exec(t, s, "DROP TABLE lines")
	execErr(t, s, "SELECT * FROM lines")
	if res := exec(t, s, "SHOW TABLES"); len(res.Rows) != 1 {
		t.Fatalf("tables = %v", res.Rows)
	}
}

func TestExecScript(t *testing.T) {
	s := openSQL(t)
	res, err := s.ExecScript(bg, `
		CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY (k));
		INSERT INTO kv VALUES (1, 'one'), (2, 'two');
		SELECT v FROM kv WHERE k = 2;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "two" {
		t.Fatalf("script result: %v", res.Rows)
	}
}

func TestExecLikeAndScalarFuncs(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "SELECT COUNT(*) FROM lines WHERE item LIKE 'w%'")
	if res.Rows[0][0] != int64(3) {
		t.Fatalf("LIKE count: %v", res.Rows)
	}
	res2 := exec(t, s, "SELECT UPPER(status) FROM orders WHERE w_id = 3 AND o_id = 1")
	if res2.Rows[0][0] != "OPEN" {
		t.Fatalf("UPPER: %v", res2.Rows)
	}
}

func TestExecAcrossModeTransition(t *testing.T) {
	// SQL keeps working under centralized GTM timestamps and across a live
	// GTM -> GClock transition.
	cfg := benchClusterConfig()
	cfg.Mode = ts.ModeGTM
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	s, err := Connect(db, "xian")
	if err != nil {
		t.Fatal(err)
	}
	exec(t, s, "CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY (k))")
	exec(t, s, "INSERT INTO kv VALUES (1, 'under-gtm')")
	if res := exec(t, s, "SHOW MODE"); res.Rows[0][0] != "GTM" {
		t.Fatalf("mode = %v", res.Rows)
	}
	if err := db.TransitionToGClock(bg); err != nil {
		t.Fatal(err)
	}
	exec(t, s, "INSERT INTO kv VALUES (2, 'under-gclock')")
	res := exec(t, s, "SELECT v FROM kv ORDER BY k")
	if len(res.Rows) != 2 || res.Rows[0][0] != "under-gtm" || res.Rows[1][0] != "under-gclock" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res := exec(t, s, "SHOW MODE"); res.Rows[0][0] != "GClock" {
		t.Fatalf("mode = %v", res.Rows)
	}
}

func TestExecSyncReplicatedTableDDL(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE audit (id BIGINT, note TEXT, PRIMARY KEY (id)) WITH SYNC REPLICATION`)
	sch, err := s.Schema("audit")
	if err != nil {
		t.Fatal(err)
	}
	if !sch.SyncReplicated {
		t.Fatal("WITH SYNC REPLICATION not applied")
	}
	// Writes to a sync table wait for replica acknowledgement and commit.
	exec(t, s, "INSERT INTO audit VALUES (1, 'x')")
	res := exec(t, s, "SELECT COUNT(*) FROM audit")
	if res.Rows[0][0] != int64(1) {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestFormatTable(t *testing.T) {
	res := &Result{
		Columns: []string{"id", "name"},
		Rows:    [][]any{{int64(1), "alice"}, {int64(2), nil}},
	}
	text := FormatTable(res)
	for _, want := range []string{"| id | name", "| 1  | alice |", "NULL", "(2 rows)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("formatted table lacks %q:\n%s", want, text)
		}
	}
	msg := FormatTable(&Result{Msg: "CREATE TABLE t"})
	if msg != "CREATE TABLE t\n" {
		t.Fatalf("msg format: %q", msg)
	}
}

// TestOrderByLimitTopN cross-checks the bounded top-N heap (used when
// ORDER BY has a LIMIT) against the full-sort path (no LIMIT): with a
// heavily duplicated sort key, every LIMIT/OFFSET window must equal the
// corresponding slice of the fully sorted result — including tie order,
// which must stay stable (scan arrival order) exactly as the stable sort
// it replaces.
func TestOrderByLimitTopN(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE tn (k BIGINT, grp BIGINT, PRIMARY KEY (k)) SHARD BY k`)
	var vals []string
	for k := 1; k <= 60; k++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", k, k%7))
	}
	exec(t, s, "INSERT INTO tn VALUES "+strings.Join(vals, ", "))

	// A sentinel-huge LIMIT whose sum with OFFSET overflows int64 must not
	// clamp the heap to zero — it takes the unbounded sort path.
	huge := exec(t, s, "SELECT k FROM tn ORDER BY grp LIMIT 9223372036854775807 OFFSET 1")
	if len(huge.Rows) != 59 {
		t.Fatalf("overflowing LIMIT+OFFSET returned %d rows, want 59", len(huge.Rows))
	}

	for _, orderBy := range []string{"grp", "grp DESC", "grp DESC, k"} {
		full := exec(t, s, "SELECT k, grp FROM tn ORDER BY "+orderBy)
		if len(full.Rows) != 60 {
			t.Fatalf("full sort returned %d rows", len(full.Rows))
		}
		for _, w := range []struct{ limit, offset int }{
			{0, 0}, {1, 0}, {5, 0}, {5, 3}, {60, 0}, {10, 55}, {10, 99},
		} {
			q := fmt.Sprintf("SELECT k, grp FROM tn ORDER BY %s LIMIT %d OFFSET %d", orderBy, w.limit, w.offset)
			got := exec(t, s, q)
			lo := w.offset
			if lo > len(full.Rows) {
				lo = len(full.Rows)
			}
			hi := lo + w.limit
			if hi > len(full.Rows) {
				hi = len(full.Rows)
			}
			want := full.Rows[lo:hi]
			if len(got.Rows) != len(want) {
				t.Fatalf("%s: %d rows, want %d", q, len(got.Rows), len(want))
			}
			for i := range want {
				if got.Rows[i][0] != want[i][0] || got.Rows[i][1] != want[i][1] {
					t.Fatalf("%s: row %d = %v, want %v", q, i, got.Rows[i], want[i])
				}
			}
		}
	}
}
