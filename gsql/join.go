package gsql

import (
	"context"
	"fmt"
	"strings"

	"globaldb"
	"globaldb/gsql/fragment"
	"globaldb/internal/keys"
	"globaldb/internal/table"
)

// This file is the distributed join engine. planSelect calls analyzeJoin
// after analyzePushdown; it decides which physical join strategies a
// two-table plan can execute with and precompiles what each needs:
//
//   - lookup-pushdown: the inner side is a PK lookup keyed by outer
//     columns on the same shard as the outer row, so the whole join
//     serializes into the outer scan's fragment (fragment.Lookup). Data
//     nodes run the inner lookup next to the data and ship joined rows —
//     the WAN carries O(matching) rows instead of the inner table.
//   - hash: the CN materializes the inner side once, builds a hash table
//     over the equi-join keys, and probes it with outer batches —
//     replacing the per-outer-row rescans of the nested loop when no
//     co-located lookup exists.
//   - nested-loop: the always-correct fallback (and the differential
//     oracle's shape).
//
// The strategy actually used is resolved per execution from the session's
// SET JOIN mode and, under AUTO, the catalog's row-count estimates.

// joinStrategy is a physical join strategy (or AUTO, the session default).
type joinStrategy uint8

const (
	joinAuto joinStrategy = iota
	joinNestLoop
	joinLookup
	joinHash
)

// String renders the strategy the way EXPLAIN and Result.JoinStrategy
// report it.
func (s joinStrategy) String() string {
	switch s {
	case joinAuto:
		return "auto"
	case joinNestLoop:
		return "nested-loop"
	case joinLookup:
		return "lookup-pushdown"
	case joinHash:
		return "hash"
	default:
		return fmt.Sprintf("joinStrategy(%d)", uint8(s))
	}
}

// Keyword renders the strategy as the SET JOIN keyword.
func (s joinStrategy) Keyword() string {
	switch s {
	case joinNestLoop:
		return "NESTLOOP"
	case joinLookup:
		return "LOOKUP"
	case joinHash:
		return "HASH"
	default:
		return "AUTO"
	}
}

// parseJoinStrategy maps a SET JOIN keyword to a strategy.
func parseJoinStrategy(kw string) (joinStrategy, bool) {
	switch strings.ToUpper(kw) {
	case "AUTO":
		return joinAuto, true
	case "NESTLOOP":
		return joinNestLoop, true
	case "LOOKUP":
		return joinLookup, true
	case "HASH":
		return joinHash, true
	default:
		return joinAuto, false
	}
}

// joinPlan is the join-strategy analysis of a two-table plan: which
// strategies beyond nested-loop are available, precompiled.
type joinPlan struct {
	lookup *lookupJoin
	hash   *hashJoin
}

// lookupJoin is the pushed lookup-join template: the outer fragment with
// fragment.Lookup attached (placeholders still OpParam; bound per
// execution) and the residual filter the CN still evaluates on joined
// rows. The ON equality conjuncts the lookup key enforces are removed
// from the residual — the data node's key encoding plus its post-scan
// value check reproduce their semantics exactly.
type lookupJoin struct {
	frag     *fragment.Fragment
	cnFilter Expr

	// describe-only fields (EXPLAIN).
	keyCols     []string
	pushedExprs []Expr
}

// hashJoin is the CN hash-join layout: the build-side access path (never
// referencing outer rows) and the equi-join key column pairs. floatKey
// marks pairs encoded float-normalized so BIGINT/DOUBLE mixes hash
// identically to SQL comparison.
type hashJoin struct {
	build     *tableScan
	outerCols []int
	innerCols []int
	floatKey  []bool
	keyDesc   []string // describe-only
}

// analyzeJoin decides the physical join strategies available to a
// two-table plan. Nested-loop is always available and not represented.
func analyzeJoin(p *selectPlan) *joinPlan {
	if p.inner == nil {
		return nil
	}
	jp := &joinPlan{lookup: analyzeLookupJoin(p), hash: analyzeHashJoin(p)}
	if jp.lookup == nil && jp.hash == nil {
		return nil
	}
	return jp
}

// analyzeLookupJoin builds the pushed lookup-join template when the plan
// qualifies: the inner side is a PK point/prefix lookup whose key
// expressions compile to fragment expressions over the outer row, the
// inner shard column is keyed by the outer table's shard column (same
// kind), and the outer scan itself accepts fragments. The co-location
// argument: shards hash the distribution value alone, so an inner row
// whose shard value equals the outer row's lives on the same shard — the
// data node serving the outer page can serve the lookup locally.
func analyzeLookupJoin(p *selectPlan) *lookupJoin {
	inner, outer := p.inner, p.outer
	if inner.kind != accessPoint && inner.kind != accessPKPrefix {
		return nil
	}
	if outer.kind != accessFull && outer.kind != accessPKPrefix {
		return nil
	}
	osch, isch := outer.tab.schema, inner.tab.schema
	boundPK := isch.PK[:len(inner.keyExprs)]

	// Co-location gate: the inner shard column must be keyed by the outer
	// shard column, with equal kinds so coercion cannot move the value to
	// a different shard's hash.
	shardPos := -1
	for i, c := range boundPK {
		if c == isch.ShardBy {
			shardPos = i
		}
	}
	if shardPos < 0 {
		return nil
	}
	cr, ok := inner.keyExprs[shardPos].(*ColRef)
	if !ok {
		return nil
	}
	ti, ci, err := resolveCol(cr, p.tables)
	if err != nil || ti != 0 || ci != osch.ShardBy {
		return nil
	}
	if isch.Columns[isch.ShardBy].Kind != osch.Columns[osch.ShardBy].Kind {
		return nil
	}

	keyExprs := make([]fragment.Expr, len(inner.keyExprs))
	for i, e := range inner.keyExprs {
		fe, ok := compilePushExpr(e, p.tables)
		if !ok {
			return nil
		}
		keyExprs[i] = *fe
	}

	// The ON conjuncts whose equality the encoded key enforces leave the
	// residual. A conjunct is consumed when it is `inner.pkCol = expr`
	// with expr being the very node the access path chose as that
	// column's key (pointer identity — extractEq stores the conjunct's
	// own value side).
	consumed := map[Expr]bool{}
	for _, c := range conjuncts(p.filter) {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		for _, side := range [2][2]Expr{{b.Left, b.Right}, {b.Right, b.Left}} {
			ccr, ok := side[0].(*ColRef)
			if !ok {
				continue
			}
			cti, cci, err := resolveCol(ccr, p.tables)
			if err != nil || cti != 1 {
				continue
			}
			for i, pkCol := range boundPK {
				if pkCol == cci && inner.keyExprs[i] == side[1] {
					consumed[c] = true
				}
			}
			if consumed[c] {
				break
			}
		}
	}

	// Split the rest of the filter: outer-only conjuncts run DN-side in
	// the fragment; everything else stays on the CN over joined rows.
	var pushed []*fragment.Expr
	var pushedSrc []Expr
	var residual []Expr
	for _, c := range conjuncts(p.filter) {
		if consumed[c] {
			continue
		}
		if fe, ok := compilePushExpr(c, p.tables); ok {
			pushed = append(pushed, fe)
			pushedSrc = append(pushedSrc, c)
		} else {
			residual = append(residual, c)
		}
	}
	cnFilter := andAll2(residual)

	// Column shipping: the CN needs what outputs, residual filter,
	// ORDER BY, HAVING and GROUP BY reference — per side. The lookup key
	// expressions are evaluated on the data node over the full decoded
	// outer row, so their columns need not ship.
	oneed := map[int]bool{}
	ineed := map[int]bool{}
	collect := func(e Expr) {
		collectColsOf(e, p.tables, 0, oneed)
		collectColsOf(e, p.tables, 1, ineed)
	}
	for _, e := range p.outExprs {
		collect(e)
	}
	collect(cnFilter)
	for _, o := range p.orderBy {
		collect(o.Expr)
	}
	collect(p.having)
	for _, g := range p.groupBy {
		collect(g)
	}
	var oproj []int
	if len(oneed) < len(osch.Columns) {
		oproj = sortedCols(oneed)
		if len(oproj) == 0 {
			// Keep one column so shipped values stay non-empty.
			oproj = []int{0}
		}
	}
	var iproj []int
	if len(ineed) < len(isch.Columns) {
		iproj = sortedCols(ineed) // may be empty: semi-join shape
	}

	okinds := make([]table.Kind, len(osch.Columns))
	for i, c := range osch.Columns {
		okinds[i] = c.Kind
	}
	ikinds := make([]table.Kind, len(isch.Columns))
	for i, c := range isch.Columns {
		ikinds[i] = c.Kind
	}
	keyKinds := make([]table.Kind, len(boundPK))
	keyCols := make([]string, len(boundPK))
	for i, c := range boundPK {
		keyKinds[i] = isch.Columns[c].Kind
		keyCols[i] = isch.Columns[c].Name
	}

	frag := &fragment.Fragment{
		Kinds:   okinds,
		Filter:  andAll(pushed),
		Project: oproj,
		Lookup: &fragment.Lookup{
			Prefix:   isch.TablePrefix(),
			KeyExprs: keyExprs,
			KeyKinds: keyKinds,
			Kinds:    ikinds,
			Project:  iproj,
		},
	}
	return &lookupJoin{frag: frag, cnFilter: cnFilter, keyCols: keyCols, pushedExprs: pushedSrc}
}

// analyzeHashJoin extracts the equi-join key pairs a CN hash join can
// build on: ColRef = ColRef conjuncts with one side per table, over
// hash-compatible kinds. The build side is the inner table accessed
// without outer references (usually a full scan). The full residual
// filter is retained above the join, so the hash table is purely an
// accelerator — it may only drop pairs the filter would drop.
func analyzeHashJoin(p *selectPlan) *hashJoin {
	osch, isch := p.tables[0].schema, p.tables[1].schema
	var h hashJoin
	for _, c := range conjuncts(p.filter) {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		lcr, lok := b.Left.(*ColRef)
		rcr, rok := b.Right.(*ColRef)
		if !lok || !rok {
			continue
		}
		lti, lci, lerr := resolveCol(lcr, p.tables)
		rti, rci, rerr := resolveCol(rcr, p.tables)
		if lerr != nil || rerr != nil {
			continue
		}
		var oc, ic int
		switch {
		case lti == 0 && rti == 1:
			oc, ic = lci, rci
		case lti == 1 && rti == 0:
			oc, ic = rci, lci
		default:
			continue
		}
		ok, float := hashKeyKinds(osch.Columns[oc].Kind, isch.Columns[ic].Kind)
		if !ok {
			continue
		}
		h.outerCols = append(h.outerCols, oc)
		h.innerCols = append(h.innerCols, ic)
		h.floatKey = append(h.floatKey, float)
		h.keyDesc = append(h.keyDesc, osch.Columns[oc].Name+"="+isch.Columns[ic].Name)
	}
	if len(h.outerCols) == 0 {
		return nil
	}
	// Build-side access path: constant bindings only (outer = nil), so it
	// can be opened once, before any outer row exists.
	h.build = chooseAccess(p.tables[1], conjuncts(p.filter), p.tables, nil)
	return &h
}

// hashKeyKinds reports whether an equi-join over the two column kinds can
// be hashed, and whether the key must be float-normalized: SQL comparison
// equates BIGINT 5 with DOUBLE 5.0, so mixed (or float) pairs encode both
// sides as float64. String/Bytes mixes compare structurally but coerce
// asymmetrically, so they stay on the nested loop.
func hashKeyKinds(a, b table.Kind) (ok, float bool) {
	if a == b {
		return true, a == table.Float64
	}
	num := func(k table.Kind) bool { return k == table.Int64 || k == table.Float64 }
	if num(a) && num(b) {
		return true, true
	}
	return false, false
}

// collectColsOf records the column positions of table ti referenced by e.
func collectColsOf(e Expr, tables []*boundTable, ti int, into map[int]bool) {
	switch x := e.(type) {
	case *ColRef:
		t, ci, err := resolveCol(x, tables)
		if err == nil && t == ti {
			into[ci] = true
		}
	case *BinaryExpr:
		collectColsOf(x.Left, tables, ti, into)
		collectColsOf(x.Right, tables, ti, into)
	case *UnaryExpr:
		collectColsOf(x.X, tables, ti, into)
	case *IsNullExpr:
		collectColsOf(x.X, tables, ti, into)
	case *InExpr:
		collectColsOf(x.X, tables, ti, into)
		for _, it := range x.List {
			collectColsOf(it, tables, ti, into)
		}
	case *BetweenExpr:
		collectColsOf(x.X, tables, ti, into)
		collectColsOf(x.Lo, tables, ti, into)
		collectColsOf(x.Hi, tables, ti, into)
	case *FuncExpr:
		for _, a := range x.Args {
			collectColsOf(a, tables, ti, into)
		}
	}
}

// sortedCols returns the set's positions in ascending order.
func sortedCols(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for ci := range set {
		out = append(out, ci)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// autoHashFanFactor tunes AUTO's hash-vs-nested-loop choice for keyed
// inner access: materializing the inner build side pays off when the
// inner table is at most this many times the outer's size.
const autoHashFanFactor = 8

// autoLookupPrefixOuter tunes AUTO's lookup choice when the lookup binds
// only a PK prefix: each outer row then fans out to a DN-side range read
// and every joined row re-ships the outer columns, so pushing pays off
// once the outer is large enough that the nested loop's one-RPC-per-outer-
// row cost dominates. Below this many outer rows the nested loop's few
// pushed range scans are cheaper.
const autoLookupPrefixOuter = 64

// resolveJoin picks this execution's physical join strategy from the
// session mode, the available strategies, and — under AUTO — the
// catalog's row-count estimates. Pushdown-off executions always take the
// nested loop, which is the differential oracle's shape.
func (p *boundPlan) resolveJoin() joinStrategy {
	if p.inner == nil {
		return joinNestLoop
	}
	jp := p.join
	canLookup := jp != nil && jp.lookup != nil && !p.noPushdown
	canHash := jp != nil && jp.hash != nil && !p.noPushdown
	switch p.joinMode {
	case joinNestLoop:
		return joinNestLoop
	case joinLookup:
		if canLookup {
			return joinLookup
		}
		return joinNestLoop
	case joinHash:
		if canHash {
			return joinHash
		}
		return joinNestLoop
	}
	// AUTO: a co-located full-PK lookup is a point read per outer row and
	// ships O(matching) rows — always best. A prefix-bound lookup fans out
	// on the data node, so it wins only when the outer side is big enough
	// that per-outer-row RPCs (the nested loop's cost) would dominate.
	if canLookup {
		if p.inner.kind == accessPoint {
			return joinLookup
		}
		if p.rowEst == nil {
			return joinLookup
		}
		outerEst := p.rowEst(p.tables[0].schema.Name)
		if outerEst == 0 || outerEst > autoLookupPrefixOuter {
			return joinLookup
		}
	}
	if canHash {
		// A full-scan inner would be rescanned per outer row by the
		// nested loop; building once always wins. For keyed inner access
		// the hash build pays off only when the inner side is not much
		// larger than the outer.
		if p.inner.kind == accessFull {
			return joinHash
		}
		if p.rowEst != nil {
			innerEst := p.rowEst(p.tables[1].schema.Name)
			outerEst := p.rowEst(p.tables[0].schema.Name)
			if innerEst > 0 && outerEst > 0 && innerEst <= outerEst*autoHashFanFactor {
				return joinHash
			}
		}
	}
	return joinNestLoop
}

// describe renders the join analysis for EXPLAIN.
func (jp *joinPlan) describe(p *selectPlan) []string {
	avail := make([]string, 0, 3)
	if jp.lookup != nil {
		avail = append(avail, "lookup-pushdown")
	}
	if jp.hash != nil {
		avail = append(avail, "hash")
	}
	avail = append(avail, "nested-loop")
	out := []string{"  join strategies: " + strings.Join(avail, ", ")}
	if lk := jp.lookup; lk != nil {
		line := "  lookup-pushdown: inner " + p.tables[1].schema.Name +
			" keyed [" + strings.Join(lk.keyCols, ", ") + "] on data nodes"
		if len(lk.pushedExprs) > 0 {
			parts := make([]string, len(lk.pushedExprs))
			for i, e := range lk.pushedExprs {
				parts[i] = e.String()
			}
			line += ", dn-filter " + strings.Join(parts, " AND ")
		}
		if lk.cnFilter != nil {
			line += ", cn-residual " + lk.cnFilter.String()
		}
		out = append(out, line)
	}
	if h := jp.hash; h != nil {
		out = append(out, "  hash: build "+h.build.describe()+
			", keys ["+strings.Join(h.keyDesc, ", ")+"]")
	}
	return out
}

// ---- Executor ----

// openLookupRows opens the outer scan with the bound lookup fragment
// attached: the returned Rows yield combined joined rows (full outer
// width then full inner width) decoded by the fragment's JoinedDecoder.
func openLookupRows(ctx context.Context, r reader, p *boundPlan, fetchLimit, pageHint, prefetch int, frag *fragment.Fragment) (*globaldb.Rows, error) {
	s := p.outer
	env := &rowEnv{tables: p.tables, params: p.params}
	opts := globaldb.ScanOpts{Limit: fetchLimit, PageSize: pageHint, Prefetch: prefetch,
		Range: scanRange(s, env), Pushdown: frag}
	switch s.kind {
	case accessPKPrefix:
		keyVals := make([]any, len(s.keyExprs))
		for i, e := range s.keyExprs {
			v, err := evalExpr(e, env)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		keyVals, err := coerceKey(s.tab.schema, s.tab.schema.PK[:len(keyVals)], keyVals)
		if err != nil {
			return nil, err
		}
		return r.ScanPKRows(ctx, s.tab.schema.Name, keyVals, opts)
	case accessFull:
		return r.ScanTableRows(ctx, s.tab.schema.Name, opts)
	default:
		return nil, fmt.Errorf("gsql: lookup join on unexpected outer access %v", s.kind)
	}
}

// lookupJoinIter adapts the fused lookup-join scan into two-table blocks:
// every combined row splits into its outer and inner views by
// sub-slicing — no copying, both halves share the batch's backing slab.
type lookupJoinIter struct {
	rows    *globaldb.Rows
	totals  *scanTotals
	counted bool
	outerW  int

	blk  rowBlock
	tabs [2][]table.Row
	ocol []table.Row
	icol []table.Row
}

func (s *lookupJoinIter) NextBlock(context.Context) (*rowBlock, error) {
	if !s.rows.NextBatch() {
		return nil, s.rows.Err()
	}
	batch := s.rows.Batch()
	if cap(s.ocol) < len(batch) {
		s.ocol = make([]table.Row, len(batch))
		s.icol = make([]table.Row, len(batch))
	}
	oc, ic := s.ocol[:len(batch)], s.icol[:len(batch)]
	for i, cr := range batch {
		oc[i] = cr[:s.outerW:s.outerW]
		ic[i] = cr[s.outerW:]
	}
	s.tabs[0], s.tabs[1] = oc, ic
	s.blk.tabs = s.tabs[:]
	return &s.blk, nil
}

func (s *lookupJoinIter) Close() {
	if !s.counted {
		s.counted = true
		if s.totals != nil {
			s.totals.s = s.totals.s.Add(s.rows.ScanStats())
		}
	}
	_ = s.rows.Close()
}

// hashJoinIter joins outer blocks against a hash table built once over
// the materialized inner side. Probing is block-native: each outer batch
// is probed row by row against the map, and every match list becomes one
// [outer fanned, inner matches] block. NULL keys never match (SQL
// equality), and the full residual filter above re-checks every pair, so
// the hash is an accelerator, never a semantic dependency.
type hashJoinIter struct {
	r      reader
	p      *boundPlan
	hj     *hashJoin
	outer  blockIter
	totals *scanTotals

	built bool
	tab   map[string][]table.Row
	enc   *keys.Encoder

	outerBlk *rowBlock
	oi       int
	curOuter table.Row
	matches  []table.Row
	mi       int

	blk      rowBlock
	tabs     [2][]table.Row
	outerRep []table.Row
}

// build materializes the inner side and hashes it by the join key. Rows
// referenced from blocks are retainable by contract (fresh slab per
// batch), so the table holds row references, not copies.
func (h *hashJoinIter) build(ctx context.Context) error {
	scan, err := openScan(ctx, h.r, h.p, h.hj.build, nil, 0, 0, 0, nil, h.totals)
	if err != nil {
		return err
	}
	defer scan.Close()
	h.tab = make(map[string][]table.Row)
	h.enc = keys.NewEncoder(64)
	for {
		blk, err := scan.NextBlock(ctx)
		if err != nil {
			return err
		}
		if blk == nil {
			return nil
		}
		for _, row := range blk.tabs[0] {
			h.enc.Reset()
			if !appendHashKeyCols(h.enc, row, h.hj.innerCols, h.hj.floatKey) {
				continue // NULL key: joins nothing
			}
			k := string(h.enc.Bytes())
			h.tab[k] = append(h.tab[k], row)
		}
	}
}

func (h *hashJoinIter) NextBlock(ctx context.Context) (*rowBlock, error) {
	if !h.built {
		if err := h.build(ctx); err != nil {
			return nil, err
		}
		h.built = true
	}
	for {
		if h.mi < len(h.matches) {
			irows := h.matches[h.mi:]
			h.mi = len(h.matches)
			if cap(h.outerRep) < len(irows) {
				h.outerRep = make([]table.Row, len(irows))
			}
			rep := h.outerRep[:len(irows)]
			for i := range rep {
				rep[i] = h.curOuter
			}
			h.tabs[0], h.tabs[1] = rep, irows
			h.blk.tabs = h.tabs[:]
			return &h.blk, nil
		}
		if h.outerBlk == nil || h.oi >= h.outerBlk.n() {
			blk, err := h.outer.NextBlock(ctx)
			if blk == nil || err != nil {
				return nil, err
			}
			h.outerBlk, h.oi = blk, 0
		}
		h.curOuter = h.outerBlk.tabs[0][h.oi]
		h.oi++
		h.enc.Reset()
		if !appendHashKeyCols(h.enc, h.curOuter, h.hj.outerCols, h.hj.floatKey) {
			continue
		}
		h.matches = h.tab[string(h.enc.Bytes())]
		h.mi = 0
	}
}

func (h *hashJoinIter) Close() { h.outer.Close() }

// appendHashKeyCols encodes a row's join-key columns into enc, returning
// false when any key value is NULL (or, defensively, of an unexpected
// dynamic type) — such rows join nothing, exactly as `col = col` with a
// NULL operand never passes the filter.
func appendHashKeyCols(enc *keys.Encoder, row table.Row, cols []int, float []bool) bool {
	for i, c := range cols {
		v := row[c]
		if v == nil {
			return false
		}
		if float[i] {
			var f float64
			switch x := v.(type) {
			case int64:
				f = float64(x)
			case float64:
				f = x
			default:
				return false
			}
			if f == 0 {
				f = 0 // -0.0 and +0.0 compare equal; hash them equal too
			}
			enc.Float64(f)
			continue
		}
		switch x := v.(type) {
		case int64:
			enc.Int64(x)
		case string:
			enc.String(x)
		case []byte:
			enc.RawBytes(x)
		case bool:
			enc.Bool(x)
		default:
			return false
		}
	}
	return true
}
