package gsql

import (
	"context"
	"fmt"

	"globaldb"
	"globaldb/gsql/fragment"
	"globaldb/internal/table"
)

// The operator pipeline is batch-native: each operator's NextBlock moves a
// rowBlock — a batch of combined rows, one column of table.Rows per FROM
// table — pulled from the operator below it. Scans hand whole decoded
// storage pages upward as blocks, filters compact a block in place
// (selection, not per-row copying), and joins fan one outer row out across
// an inner block. Operators still fetch lazily, so a consumer that stops
// early — a LIMIT, an aggregate short-circuit — stops the whole pipeline,
// and the scan at the bottom stops requesting pages from storage. Rows
// leave block form only at the true row edges: result assembly / driver
// Rows.Next, and the aggregation hash probe.

// rowBlock is a batch of combined rows: tabs[t][i] is FROM-table t's row
// in combined row i. All tabs have equal length. A block returned by
// NextBlock is valid until the following NextBlock call; consumers may
// retain the table.Rows inside it, but not the block or its slices.
type rowBlock struct {
	tabs [][]table.Row
}

// n returns the number of combined rows in the block.
func (b *rowBlock) n() int {
	if len(b.tabs) == 0 {
		return 0
	}
	return len(b.tabs[0])
}

// row copies combined row i into scratch, the bridge to row-at-a-time
// expression evaluation.
func (b *rowBlock) row(i int, scratch []table.Row) []table.Row {
	out := scratch[:len(b.tabs)]
	for t := range b.tabs {
		out[t] = b.tabs[t][i]
	}
	return out
}

// blockIter is a batch-native volcano operator: NextBlock returns the next
// non-empty block, or nil at the end of the stream.
type blockIter interface {
	NextBlock(ctx context.Context) (*rowBlock, error)
	Close()
}

// sliceBlocks yields one pre-materialized row set as a single block. It
// backs point-get results and the materializing legacy path used as a
// differential oracle.
type sliceBlocks struct {
	blk  rowBlock
	done bool
}

// newSliceBlocks converts row-major combined rows into one block.
func newSliceBlocks(rows [][]table.Row, ntabs int) *sliceBlocks {
	s := &sliceBlocks{}
	if len(rows) == 0 {
		s.done = true
		return s
	}
	s.blk.tabs = make([][]table.Row, ntabs)
	for t := 0; t < ntabs; t++ {
		col := make([]table.Row, len(rows))
		for i, r := range rows {
			col[i] = r[t]
		}
		s.blk.tabs[t] = col
	}
	return s
}

func (s *sliceBlocks) NextBlock(context.Context) (*rowBlock, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return &s.blk, nil
}

func (s *sliceBlocks) Close() {}

// scanTotals accumulates per-layer scan row counts across every scan a
// query opens (outer plus join inners), surfaced on the Result so pushdown
// wins are observable per query.
type scanTotals struct {
	s globaldb.ScanStats
}

// scanIter adapts a streaming globaldb.Rows into single-table blocks,
// moving each decoded storage page upward as one block reference.
type scanIter struct {
	rows    *globaldb.Rows
	totals  *scanTotals
	counted bool
	blk     rowBlock
	tabs    [1][]table.Row
}

func (s *scanIter) NextBlock(context.Context) (*rowBlock, error) {
	if !s.rows.NextBatch() {
		return nil, s.rows.Err()
	}
	s.tabs[0] = s.rows.Batch()
	s.blk.tabs = s.tabs[:]
	return &s.blk, nil
}

func (s *scanIter) Close() {
	if !s.counted {
		s.counted = true
		if s.totals != nil {
			s.totals.s = s.totals.s.Add(s.rows.ScanStats())
		}
	}
	_ = s.rows.Close()
}

// filterIter drops combined rows failing the predicate, compacting each
// block in place: survivors are selected by shifting references down, never
// by re-allocating rows.
type filterIter struct {
	child  blockIter
	filter Expr
	env    rowEnv
	scr    [2]table.Row
}

func newFilterIter(child blockIter, filter Expr, tables []*boundTable, params []any) *filterIter {
	return &filterIter{child: child, filter: filter, env: rowEnv{tables: tables, params: params}}
}

func (f *filterIter) NextBlock(ctx context.Context) (*rowBlock, error) {
	for {
		blk, err := f.child.NextBlock(ctx)
		if blk == nil || err != nil {
			return nil, err
		}
		n := blk.n()
		keep := 0
		for i := 0; i < n; i++ {
			f.env.rows = blk.row(i, f.scr[:])
			v, err := evalExpr(f.filter, &f.env)
			if err != nil {
				return nil, err
			}
			pass, err := truthy(v)
			if err != nil {
				return nil, err
			}
			if !pass {
				continue
			}
			if keep != i {
				for t := range blk.tabs {
					blk.tabs[t][keep] = blk.tabs[t][i]
				}
			}
			keep++
		}
		if keep > 0 {
			for t := range blk.tabs {
				blk.tabs[t] = blk.tabs[t][:keep]
			}
			return blk, nil
		}
	}
}

func (f *filterIter) Close() { f.child.Close() }

// nestedLoopIter streams a nested-loop join: for each outer row it opens a
// fresh inner scan (whose key expressions may bind outer columns) and
// yields [outer, inner] blocks — the outer row's reference fanned across
// each inner block.
type nestedLoopIter struct {
	outer     blockIter
	openInner func(outerRow table.Row) (blockIter, error)

	outerBlk *rowBlock
	oi       int
	curOuter table.Row
	inner    blockIter

	blk      rowBlock
	tabs     [2][]table.Row
	outerRep []table.Row
}

func (j *nestedLoopIter) NextBlock(ctx context.Context) (*rowBlock, error) {
	for {
		if j.inner == nil {
			if j.outerBlk == nil || j.oi >= j.outerBlk.n() {
				blk, err := j.outer.NextBlock(ctx)
				if blk == nil || err != nil {
					return nil, err
				}
				j.outerBlk, j.oi = blk, 0
			}
			j.curOuter = j.outerBlk.tabs[0][j.oi]
			j.oi++
			inner, err := j.openInner(j.curOuter)
			if err != nil {
				return nil, err
			}
			j.inner = inner
		}
		iblk, err := j.inner.NextBlock(ctx)
		if err != nil {
			return nil, err
		}
		if iblk == nil {
			j.inner.Close()
			j.inner = nil
			continue
		}
		irows := iblk.tabs[0]
		if cap(j.outerRep) < len(irows) {
			j.outerRep = make([]table.Row, len(irows))
		}
		rep := j.outerRep[:len(irows)]
		for i := range rep {
			rep[i] = j.curOuter
		}
		j.tabs[0], j.tabs[1] = rep, irows
		j.blk.tabs = j.tabs[:]
		return &j.blk, nil
	}
}

func (j *nestedLoopIter) Close() {
	if j.inner != nil {
		j.inner.Close()
	}
	j.outer.Close()
}

// openScan builds the streaming scan operator for one table. outerRow, when
// non-nil, binds outer column references in the scan's key and range
// expressions (join inner lookups). fetchLimit > 0 caps the rows the scan
// requests from storage (a fully pushed LIMIT); pageHint > 0 sizes the
// first fetched page (early-terminating consumers); prefetch is the
// pages-ahead window hint passed to the shard cursors (< 0 disables
// background prefetching for scans the executor expects to stop early).
// frag, when non-nil, is the bound DN-side fragment attached to the scan's
// pages; totals, when non-nil, accumulates the scan's per-layer row counts
// at Close.
func openScan(ctx context.Context, r reader, p *boundPlan, s *tableScan, outerRow table.Row, fetchLimit, pageHint, prefetch int, frag *fragment.Fragment, totals *scanTotals) (blockIter, error) {
	env := &rowEnv{tables: p.tables, params: p.params}
	if outerRow != nil {
		env.rows = []table.Row{outerRow}
	}
	keyVals := make([]any, len(s.keyExprs))
	for i, e := range s.keyExprs {
		v, err := evalExpr(e, env)
		if err != nil {
			return nil, err
		}
		keyVals[i] = v
	}
	name := s.tab.schema.Name
	opts := globaldb.ScanOpts{Limit: fetchLimit, PageSize: pageHint, Prefetch: prefetch, Range: scanRange(s, env), Pushdown: frag}
	switch s.kind {
	case accessPoint:
		keyVals, err := coerceKey(s.tab.schema, s.tab.schema.PK, keyVals)
		if err != nil {
			return nil, err
		}
		row, found, err := r.Get(ctx, name, keyVals)
		if err != nil || !found {
			return &sliceBlocks{done: true}, err
		}
		return newSliceBlocks([][]table.Row{{row}}, 1), nil
	case accessPKPrefix:
		keyVals, err := coerceKey(s.tab.schema, s.tab.schema.PK[:len(keyVals)], keyVals)
		if err != nil {
			return nil, err
		}
		rows, err := r.ScanPKRows(ctx, name, keyVals, opts)
		if err != nil {
			return nil, err
		}
		return &scanIter{rows: rows, totals: totals}, nil
	case accessIndex:
		ix, err := findIndex(s.tab.schema, s.index)
		if err != nil {
			return nil, err
		}
		keyVals, err := coerceKey(s.tab.schema, ix.Cols[:len(keyVals)], keyVals)
		if err != nil {
			return nil, err
		}
		rows, err := r.ScanIndexRows(ctx, name, s.index, keyVals, opts)
		if err != nil {
			return nil, err
		}
		return &scanIter{rows: rows, totals: totals}, nil
	case accessFull:
		rows, err := r.ScanTableRows(ctx, name, opts)
		if err != nil {
			return nil, err
		}
		return &scanIter{rows: rows, totals: totals}, nil
	default:
		return nil, fmt.Errorf("gsql: unknown access kind %v", s.kind)
	}
}

// scanRange evaluates a scan's pushed range bounds. A bound whose value is
// NULL or fails to coerce to the column kind is dropped — the residual
// filter still holds the conjunct, so dropping only widens the scan.
func scanRange(s *tableScan, env *rowEnv) *globaldb.ScanRange {
	if s.rangeCol < 0 || (s.rangeLo == nil && s.rangeHi == nil) {
		return nil
	}
	rng := &globaldb.ScanRange{LoExcl: s.loExcl, HiExcl: s.hiExcl}
	if s.rangeLo != nil {
		if v, err := evalExpr(s.rangeLo, env); err == nil && v != nil {
			if cv, err := coerceValue(s.tab.schema, s.rangeCol, v); err == nil {
				rng.Lo = cv
			}
		}
	}
	if s.rangeHi != nil {
		if v, err := evalExpr(s.rangeHi, env); err == nil && v != nil {
			if cv, err := coerceValue(s.tab.schema, s.rangeCol, v); err == nil {
				rng.Hi = cv
			}
		}
	}
	if rng.Lo == nil && rng.Hi == nil {
		return nil
	}
	return rng
}

// buildPipeline assembles the batch-native operator tree for a planned
// SELECT: scan(outer, with any DN-side fragment attached) -> [join(inner):
// fused lookup-pushdown, hash, or nested-loop] -> residual filter.
// orderDone reports whether the scan already delivers rows in the plan's
// ORDER BY order (so the driver can skip the sort and terminate early on
// LIMIT). The returned totals accumulate every scan's per-layer row counts
// as iterators close.
func buildPipeline(ctx context.Context, r reader, p *boundPlan) (it blockIter, orderDone bool, totals *scanTotals, err error) {
	totals = &scanTotals{}
	orderDone = scanSatisfiesOrder(p.selectPlan)

	strategy := joinNestLoop
	if p.inner != nil {
		strategy = p.resolveJoin()
	}

	// The DN-partial phase: bind the fragment template with this
	// execution's parameters. A bind failure (e.g. an exotic parameter
	// type) falls back to CN-side evaluation — the fragment is an
	// optimization, not a dependency. A pushed lookup join binds its own
	// fragment (outer scan + inner lookup fused); a bind failure there
	// falls back to the nested loop the same way.
	filter := p.filter
	var frag *fragment.Fragment
	lookupOn := false
	if strategy == joinLookup {
		if bf, bindErr := p.join.lookup.frag.Bind(p.params); bindErr == nil {
			frag = bf
			filter = p.join.lookup.cnFilter
			lookupOn = true
		} else {
			strategy = joinNestLoop
		}
	}
	if !lookupOn && p.push != nil && !p.push.agg && !p.noPushdown {
		if bf, bindErr := p.push.frag.Bind(p.params); bindErr == nil {
			frag = bf
			filter = p.push.cnFilter
		}
	}

	// A limit is pushed all the way into the outer scan only when nothing
	// above it can drop, add or reorder rows. With the filter running
	// DN-side the limit budgets qualifying rows, so `WHERE pushed LIMIT k`
	// ships O(k) rows instead of scanning to the CN. A pushed lookup join
	// qualifies too: the cursor's budget counts joined rows as the data
	// nodes emit them, so LIMIT stops the outer cursor's page fetching
	// early exactly like the single-table case. Everything else still
	// benefits from streaming: the limit operator simply stops pulling.
	fetchLimit := 0
	pageHint := 0
	prefetch := 0
	if p.limit >= 0 && (p.inner == nil || lookupOn) && !p.grouped &&
		(len(p.orderBy) == 0 || orderDone) && !p.distinct {
		if filter == nil {
			fetchLimit = int(p.limit + p.offset)
		} else {
			// The LIMIT will terminate the scan early but cannot be pushed
			// into the cursor's row budget (a CN-side residual filter still
			// drops rows), so the cursor cannot know when the consumer will
			// stop. Cap the prefetch window to zero — fetch pages strictly
			// on demand — so early termination never pays the WAN for pages
			// nobody reads. Fully pushed limits (fetchLimit > 0) keep the
			// prefetcher: the cursor's own row budget stops it exactly.
			prefetch = -1
		}
		// Early termination will stop the scan after limit+offset output
		// rows; start with a page of about that size so a satisfied LIMIT
		// costs one small page instead of a full default page.
		pageHint = int(p.limit + p.offset)
		if pageHint < 16 {
			pageHint = 16
		}
	}
	if lookupOn {
		rows, err := openLookupRows(ctx, r, p, fetchLimit, pageHint, prefetch, frag)
		if err != nil {
			return nil, false, nil, err
		}
		it = &lookupJoinIter{rows: rows, totals: totals,
			outerW: len(p.tables[0].schema.Columns)}
	} else {
		scan, err := openScan(ctx, r, p, p.outer, nil, fetchLimit, pageHint, prefetch, frag, totals)
		if err != nil {
			return nil, false, nil, err
		}
		it = scan
		switch {
		case p.inner != nil && strategy == joinHash:
			it = &hashJoinIter{r: r, p: p, hj: p.join.hash, outer: it, totals: totals}
		case p.inner != nil:
			it = &nestedLoopIter{
				outer: it,
				openInner: func(outerRow table.Row) (blockIter, error) {
					// Inner lookups are opened per outer row, drained, and
					// closed immediately — there is no consumption to overlap a
					// prefetch with, so keep them on the synchronous path
					// rather than paying a goroutine + channel per outer row.
					return openScan(ctx, r, p, p.inner, outerRow, 0, 0, -1, nil, totals)
				},
			}
		}
	}
	if filter != nil {
		it = newFilterIter(it, filter, p.tables, p.params)
	}
	if p.inner != nil {
		p.chosenJoin = strategy
	}
	return it, orderDone, totals, nil
}

// scanSatisfiesOrder reports whether the streaming outer scan already
// yields rows in the plan's ORDER BY order: single-table plans whose scan
// is a PK-prefix scan (key order within the shard) or a full scan (the
// cross-shard merge yields global primary-key order), with an ascending
// ORDER BY that follows the primary key — columns bound by the equality
// prefix are constant and may be skipped. When true, the sort is elided and
// LIMIT terminates the scan early.
func scanSatisfiesOrder(p *selectPlan) bool {
	if p.inner != nil || p.grouped || len(p.orderBy) == 0 {
		return false
	}
	s := p.outer
	sch := s.tab.schema
	var bound map[int]bool
	switch s.kind {
	case accessPoint:
		return true // at most one row
	case accessPKPrefix:
		bound = make(map[int]bool, len(s.keyExprs))
		for i := range s.keyExprs {
			bound[sch.PK[i]] = true
		}
	case accessFull:
	default:
		return false
	}
	pos := 0
	for _, o := range p.orderBy {
		if o.Desc {
			return false
		}
		cr, ok := o.Expr.(*ColRef)
		if !ok {
			return false
		}
		ti, ci, err := resolveCol(cr, p.tables)
		if err != nil || ti != 0 {
			return false
		}
		if bound[ci] {
			continue // constant under the equality prefix
		}
		for pos < len(sch.PK) && bound[sch.PK[pos]] {
			pos++
		}
		if pos >= len(sch.PK) || sch.PK[pos] != ci {
			return false
		}
		pos++
	}
	return true
}
