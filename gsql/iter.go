package gsql

import (
	"context"
	"fmt"

	"globaldb"
	"globaldb/gsql/fragment"
	"globaldb/internal/table"
)

// rowIter is a volcano-style operator: each Next pulls one combined row
// (one table.Row per FROM table) from the operator below it. Operators
// fetch lazily, so a consumer that stops early — a LIMIT, an aggregate
// short-circuit — stops the whole pipeline, and the scan at the bottom
// stops requesting pages from storage.
type rowIter interface {
	Next(ctx context.Context) ([]table.Row, bool, error)
	Close()
}

// sliceIter yields a pre-materialized row set. It backs point-get results
// and the materializing legacy path used as a differential oracle.
type sliceIter struct {
	rows [][]table.Row
	i    int
}

func (s *sliceIter) Next(context.Context) ([]table.Row, bool, error) {
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.i]
	s.i++
	return r, true, nil
}

func (s *sliceIter) Close() {}

// scanTotals accumulates per-layer scan row counts across every scan a
// query opens (outer plus join inners), surfaced on the Result so pushdown
// wins are observable per query.
type scanTotals struct {
	s globaldb.ScanStats
}

// scanIter adapts a streaming globaldb.Rows into single-table combined rows.
type scanIter struct {
	rows    *globaldb.Rows
	totals  *scanTotals
	counted bool
}

func (s *scanIter) Next(context.Context) ([]table.Row, bool, error) {
	if s.rows.Next() {
		return []table.Row{table.Row(s.rows.Row())}, true, nil
	}
	return nil, false, s.rows.Err()
}

func (s *scanIter) Close() {
	if !s.counted {
		s.counted = true
		if s.totals != nil {
			s.totals.s = s.totals.s.Add(s.rows.ScanStats())
		}
	}
	_ = s.rows.Close()
}

// filterIter drops combined rows failing the predicate.
type filterIter struct {
	child  rowIter
	filter Expr
	tables []*boundTable
	params []any
}

func (f *filterIter) Next(ctx context.Context) ([]table.Row, bool, error) {
	for {
		combined, ok, err := f.child.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := passes(f.filter, f.tables, combined, f.params)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return combined, true, nil
		}
	}
}

func (f *filterIter) Close() { f.child.Close() }

// nestedLoopIter streams a nested-loop join: for each outer row it opens a
// fresh inner scan (whose key expressions may bind outer columns) and
// yields [outer, inner] pairs as the inner streams.
type nestedLoopIter struct {
	outer     rowIter
	openInner func(outerRow table.Row) (rowIter, error)
	curOuter  table.Row
	inner     rowIter
}

func (j *nestedLoopIter) Next(ctx context.Context) ([]table.Row, bool, error) {
	for {
		if j.inner == nil {
			combined, ok, err := j.outer.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			j.curOuter = combined[0]
			inner, err := j.openInner(j.curOuter)
			if err != nil {
				return nil, false, err
			}
			j.inner = inner
		}
		irow, ok, err := j.inner.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			j.inner.Close()
			j.inner = nil
			continue
		}
		return []table.Row{j.curOuter, irow[0]}, true, nil
	}
}

func (j *nestedLoopIter) Close() {
	if j.inner != nil {
		j.inner.Close()
	}
	j.outer.Close()
}

// openScan builds the streaming scan operator for one table. outerRow, when
// non-nil, binds outer column references in the scan's key and range
// expressions (join inner lookups). fetchLimit > 0 caps the rows the scan
// requests from storage (a fully pushed LIMIT); pageHint > 0 sizes the
// first fetched page (early-terminating consumers). frag, when non-nil, is
// the bound DN-side fragment attached to the scan's pages; totals, when
// non-nil, accumulates the scan's per-layer row counts at Close.
func openScan(ctx context.Context, r reader, p *boundPlan, s *tableScan, outerRow table.Row, fetchLimit, pageHint int, frag *fragment.Fragment, totals *scanTotals) (rowIter, error) {
	env := &rowEnv{tables: p.tables, params: p.params}
	if outerRow != nil {
		env.rows = []table.Row{outerRow}
	}
	keyVals := make([]any, len(s.keyExprs))
	for i, e := range s.keyExprs {
		v, err := evalExpr(e, env)
		if err != nil {
			return nil, err
		}
		keyVals[i] = v
	}
	name := s.tab.schema.Name
	opts := globaldb.ScanOpts{Limit: fetchLimit, PageSize: pageHint, Range: scanRange(s, env), Pushdown: frag}
	switch s.kind {
	case accessPoint:
		keyVals, err := coerceKey(s.tab.schema, s.tab.schema.PK, keyVals)
		if err != nil {
			return nil, err
		}
		row, found, err := r.Get(ctx, name, keyVals)
		if err != nil || !found {
			return &sliceIter{}, err
		}
		return &sliceIter{rows: [][]table.Row{{row}}}, nil
	case accessPKPrefix:
		keyVals, err := coerceKey(s.tab.schema, s.tab.schema.PK[:len(keyVals)], keyVals)
		if err != nil {
			return nil, err
		}
		rows, err := r.ScanPKRows(ctx, name, keyVals, opts)
		if err != nil {
			return nil, err
		}
		return &scanIter{rows: rows, totals: totals}, nil
	case accessIndex:
		ix, err := findIndex(s.tab.schema, s.index)
		if err != nil {
			return nil, err
		}
		keyVals, err := coerceKey(s.tab.schema, ix.Cols[:len(keyVals)], keyVals)
		if err != nil {
			return nil, err
		}
		rows, err := r.ScanIndexRows(ctx, name, s.index, keyVals, opts)
		if err != nil {
			return nil, err
		}
		return &scanIter{rows: rows, totals: totals}, nil
	case accessFull:
		rows, err := r.ScanTableRows(ctx, name, opts)
		if err != nil {
			return nil, err
		}
		return &scanIter{rows: rows, totals: totals}, nil
	default:
		return nil, fmt.Errorf("gsql: unknown access kind %v", s.kind)
	}
}

// scanRange evaluates a scan's pushed range bounds. A bound whose value is
// NULL or fails to coerce to the column kind is dropped — the residual
// filter still holds the conjunct, so dropping only widens the scan.
func scanRange(s *tableScan, env *rowEnv) *globaldb.ScanRange {
	if s.rangeCol < 0 || (s.rangeLo == nil && s.rangeHi == nil) {
		return nil
	}
	rng := &globaldb.ScanRange{LoExcl: s.loExcl, HiExcl: s.hiExcl}
	if s.rangeLo != nil {
		if v, err := evalExpr(s.rangeLo, env); err == nil && v != nil {
			if cv, err := coerceValue(s.tab.schema, s.rangeCol, v); err == nil {
				rng.Lo = cv
			}
		}
	}
	if s.rangeHi != nil {
		if v, err := evalExpr(s.rangeHi, env); err == nil && v != nil {
			if cv, err := coerceValue(s.tab.schema, s.rangeCol, v); err == nil {
				rng.Hi = cv
			}
		}
	}
	if rng.Lo == nil && rng.Hi == nil {
		return nil
	}
	return rng
}

// buildPipeline assembles the streaming operator tree for a planned SELECT:
// scan(outer, with any DN-side fragment attached) -> [nested-loop
// join(inner)] -> residual filter. orderDone reports whether the scan
// already delivers rows in the plan's ORDER BY order (so the driver can
// skip the sort and terminate early on LIMIT). The returned totals
// accumulate every scan's per-layer row counts as iterators close.
func buildPipeline(ctx context.Context, r reader, p *boundPlan) (it rowIter, orderDone bool, totals *scanTotals, err error) {
	totals = &scanTotals{}
	orderDone = scanSatisfiesOrder(p.selectPlan)

	// The DN-partial phase: bind the fragment template with this
	// execution's parameters. A bind failure (e.g. an exotic parameter
	// type) falls back to CN-side evaluation — the fragment is an
	// optimization, not a dependency.
	filter := p.filter
	var frag *fragment.Fragment
	if p.push != nil && !p.push.agg && !p.noPushdown {
		if bf, bindErr := p.push.frag.Bind(p.params); bindErr == nil {
			frag = bf
			filter = p.push.cnFilter
		}
	}

	// A limit is pushed all the way into the outer scan only when nothing
	// above it can drop, add or reorder rows. With the filter running
	// DN-side the limit budgets qualifying rows, so `WHERE pushed LIMIT k`
	// ships O(k) rows instead of scanning to the CN. Everything else still
	// benefits from streaming: the limit operator simply stops pulling.
	fetchLimit := 0
	pageHint := 0
	if p.limit >= 0 && p.inner == nil && !p.grouped &&
		(len(p.orderBy) == 0 || orderDone) && !p.distinct {
		if filter == nil {
			fetchLimit = int(p.limit + p.offset)
		}
		// Early termination will stop the scan after limit+offset output
		// rows; start with a page of about that size so a satisfied LIMIT
		// costs one small page instead of a full default page.
		pageHint = int(p.limit + p.offset)
		if pageHint < 16 {
			pageHint = 16
		}
	}
	scan, err := openScan(ctx, r, p, p.outer, nil, fetchLimit, pageHint, frag, totals)
	if err != nil {
		return nil, false, nil, err
	}
	it = scan
	if p.inner != nil {
		it = &nestedLoopIter{
			outer: it,
			openInner: func(outerRow table.Row) (rowIter, error) {
				return openScan(ctx, r, p, p.inner, outerRow, 0, 0, nil, totals)
			},
		}
	}
	if filter != nil {
		it = &filterIter{child: it, filter: filter, tables: p.tables, params: p.params}
	}
	return it, orderDone, totals, nil
}

// scanSatisfiesOrder reports whether the streaming outer scan already
// yields rows in the plan's ORDER BY order: single-table plans whose scan
// is a PK-prefix scan (key order within the shard) or a full scan (the
// cross-shard merge yields global primary-key order), with an ascending
// ORDER BY that follows the primary key — columns bound by the equality
// prefix are constant and may be skipped. When true, the sort is elided and
// LIMIT terminates the scan early.
func scanSatisfiesOrder(p *selectPlan) bool {
	if p.inner != nil || p.grouped || len(p.orderBy) == 0 {
		return false
	}
	s := p.outer
	sch := s.tab.schema
	var bound map[int]bool
	switch s.kind {
	case accessPoint:
		return true // at most one row
	case accessPKPrefix:
		bound = make(map[int]bool, len(s.keyExprs))
		for i := range s.keyExprs {
			bound[sch.PK[i]] = true
		}
	case accessFull:
	default:
		return false
	}
	pos := 0
	for _, o := range p.orderBy {
		if o.Desc {
			return false
		}
		cr, ok := o.Expr.(*ColRef)
		if !ok {
			return false
		}
		ti, ci, err := resolveCol(cr, p.tables)
		if err != nil || ti != 0 {
			return false
		}
		if bound[ci] {
			continue // constant under the equality prefix
		}
		for pos < len(sch.PK) && bound[sch.PK[pos]] {
			pos++
		}
		if pos >= len(sch.PK) || sch.PK[pos] != ci {
			return false
		}
		pos++
	}
	return true
}
