package gsql

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"globaldb/internal/table"
)

// litEnv evaluates expressions with no columns in scope.
var litEnv = &rowEnv{}

func evalSQL(t *testing.T, exprSQL string) any {
	t.Helper()
	sel := mustParse(t, "SELECT "+exprSQL+" FROM t").(*Select)
	v, err := evalExpr(sel.Items[0].Expr, litEnv)
	if err != nil {
		t.Fatalf("eval(%q): %v", exprSQL, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 + 2", int64(3)},
		{"7 / 2", int64(3)},
		{"7 % 3", int64(1)},
		{"7.0 / 2", 3.5},
		{"1 + 2.5", 3.5},
		{"2 * 3 + 1", int64(7)},
		{"-(2 + 3)", int64(-5)},
		{"'ab' + 'cd'", "abcd"},
	}
	for _, c := range cases {
		if got := evalSQL(t, c.src); got != c.want {
			t.Errorf("%s = %v (%T), want %v", c.src, got, got, c.want)
		}
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	sel := mustParse(t, "SELECT 1 / 0 FROM t").(*Select)
	if _, err := evalExpr(sel.Items[0].Expr, litEnv); err == nil {
		t.Fatal("integer division by zero must fail")
	}
	sel2 := mustParse(t, "SELECT 1.0 / 0.0 FROM t").(*Select)
	if _, err := evalExpr(sel2.Items[0].Expr, litEnv); err == nil {
		t.Fatal("float division by zero must fail")
	}
}

func TestEvalComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"1 = 1.0", true},
		{"'a' < 'b'", true},
		{"'a' = 'a'", true},
		{"TRUE = TRUE", true},
		{"1 <> 2", true},
		{"2 BETWEEN 1 AND 3", true},
		{"4 NOT BETWEEN 1 AND 3", true},
		{"2 IN (1, 2, 3)", true},
		{"5 NOT IN (1, 2, 3)", true},
		{"NULL IS NULL", true},
		{"1 IS NOT NULL", true},
	}
	for _, c := range cases {
		if got := evalSQL(t, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalNullPropagation(t *testing.T) {
	for _, src := range []string{"NULL + 1", "1 < NULL", "NOT NULL", "NULL IN (1, 2)", "NULL BETWEEN 1 AND 2"} {
		if got := evalSQL(t, src); got != nil {
			t.Errorf("%s = %v, want NULL", src, got)
		}
	}
	// Three-valued logic short circuits.
	if got := evalSQL(t, "FALSE AND NULL"); got != false {
		t.Errorf("FALSE AND NULL = %v", got)
	}
	if got := evalSQL(t, "TRUE OR NULL"); got != true {
		t.Errorf("TRUE OR NULL = %v", got)
	}
	if got := evalSQL(t, "TRUE AND NULL"); got != nil {
		t.Errorf("TRUE AND NULL = %v", got)
	}
	if got := evalSQL(t, "FALSE OR NULL"); got != nil {
		t.Errorf("FALSE OR NULL = %v", got)
	}
}

func TestEvalLike(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"'hello' LIKE 'h%'", true},
		{"'hello' LIKE '%llo'", true},
		{"'hello' LIKE 'h_llo'", true},
		{"'hello' LIKE 'x%'", false},
		{"'h.llo' LIKE 'h.llo'", true},
		{"'hxllo' LIKE 'h.llo'", false}, // dot is literal, not a wildcard
		{"'hello' NOT LIKE 'x%'", true},
	}
	for _, c := range cases {
		if got := evalSQL(t, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalScalarFuncs(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"ABS(-3)", int64(3)},
		{"ABS(-2.5)", 2.5},
		{"LOWER('AbC')", "abc"},
		{"UPPER('AbC')", "ABC"},
		{"LENGTH('abcd')", int64(4)},
		{"COALESCE(NULL, NULL, 7)", int64(7)},
		{"COALESCE(NULL, 'x', 'y')", "x"},
		{"ABS(NULL)", nil},
	}
	for _, c := range cases {
		if got := evalSQL(t, c.src); got != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalTypeErrors(t *testing.T) {
	for _, src := range []string{"1 + 'x'", "'a' < 1", "NOT 5", "TRUE AND 3", "ABS('x')"} {
		sel := mustParse(t, "SELECT "+src+" FROM t").(*Select)
		if _, err := evalExpr(sel.Items[0].Expr, litEnv); !errors.Is(err, ErrType) {
			t.Errorf("%s: err = %v, want ErrType", src, err)
		}
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry and totality over int64/float64 mixes.
	f := func(a, b int64) bool {
		c1, err1 := compare(a, b)
		c2, err2 := compare(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a int64, b float64) bool {
		if math.IsNaN(b) {
			return true // NaN never enters storage (no NaN literals)
		}
		c1, err1 := compare(a, b)
		c2, err2 := compare(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == -c2
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestArithIntFloatProperties(t *testing.T) {
	// int64+int64 stays integral; mixing with float64 promotes.
	f := func(a, b int32) bool {
		v, err := arith("+", int64(a), int64(b))
		if err != nil {
			return false
		}
		_, isInt := v.(int64)
		return isInt && v.(int64) == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a int32, b float32) bool {
		v, err := arith("*", int64(a), float64(b))
		if err != nil {
			return false
		}
		_, isFloat := v.(float64)
		return isFloat
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestRowEnvResolution(t *testing.T) {
	sch := &table.Schema{
		ID:   1,
		Name: "t",
		Columns: []table.Column{
			{Name: "a", Kind: table.Int64},
			{Name: "b", Kind: table.String},
		},
		PK: []int{0},
	}
	env := &rowEnv{
		tables: []*boundTable{{ref: TableRef{Table: "t", Alias: "t"}, schema: sch}},
		rows:   []table.Row{{int64(7), "x"}},
	}
	v, err := evalExpr(&ColRef{Name: "a"}, env)
	if err != nil || v != int64(7) {
		t.Fatalf("bare ref: %v %v", v, err)
	}
	v, err = evalExpr(&ColRef{Table: "t", Name: "b"}, env)
	if err != nil || v != "x" {
		t.Fatalf("qualified ref: %v %v", v, err)
	}
	if _, err := evalExpr(&ColRef{Name: "nope"}, env); err == nil {
		t.Fatal("unknown column must fail")
	}
	if _, err := evalExpr(&ColRef{Table: "u", Name: "a"}, env); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestLikePatternCache(t *testing.T) {
	// Same pattern twice exercises the cache path.
	for i := 0; i < 2; i++ {
		ok, err := likeMatch("abc", "a%")
		if err != nil || !ok {
			t.Fatalf("likeMatch: %v %v", ok, err)
		}
	}
	if _, err := likeMatch("x", "[("); err != nil {
		// Metacharacters are quoted, so this is a literal non-match.
		t.Fatalf("quoted pattern: %v", err)
	}
}
