package gsql

import (
	"fmt"
	"strings"
	"testing"
)

// analyzeText flattens an EXPLAIN ANALYZE result's plan column.
func analyzeText(t *testing.T, res *Result) string {
	t.Helper()
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", res.Columns)
	}
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].(string))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestExplainAnalyzeSpanTree is the acceptance check for query tracing: on
// a cross-region filtered scan, EXPLAIN ANALYZE must print the plan, then
// a span tree with per-shard scan-RPC spans (tagged shard and node,
// carrying DN-side execute time), then the counter summary attributing
// WAN wait against wall time.
func TestExplainAnalyzeSpanTree(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)

	// No shard-key predicate: the scan fans out to every shard, whose
	// primaries are spread across the three regions.
	res := exec(t, s, "EXPLAIN ANALYZE SELECT * FROM orders WHERE amount >= 10")
	out := analyzeText(t, res)

	for _, want := range []string{
		"plan [cached]", // execExplain hands its plan to the traced run
		"bind",
		"execute",
		"scan-page",
		"node=",
		"(dn-exec ", // DN-side execute time carried back in the page RPC
		"scan: storage=6 rows",
		"wan: pages=",
		"% of wall; rest overlapped with consumption)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}
	// Every shard's page RPC shows up as its own tagged span.
	for shard := 0; shard < 4; shard++ {
		if !strings.Contains(out, fmt.Sprintf("shard=%d ", shard)) {
			t.Fatalf("no scan-page span for shard %d:\n%s", shard, out)
		}
	}
	// The analyzed run's counters also flow into the Result like a normal
	// SELECT's would.
	if res.Scan.StorageRows != 6 || res.Scan.WANRows != 5 {
		t.Fatalf("scan counters = %+v, want storage=6 wan=5", res.Scan)
	}
}

// TestExplainWithoutAnalyzeDoesNotExecute pins that plain EXPLAIN still
// only plans: no span tree, no counters.
func TestExplainWithoutAnalyzeDoesNotExecute(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	res := exec(t, s, "EXPLAIN SELECT * FROM orders WHERE amount >= 10")
	out := analyzeText(t, res)
	if strings.Contains(out, "scan-page") || strings.Contains(out, "scan: storage=") {
		t.Fatalf("EXPLAIN without ANALYZE executed the query:\n%s", out)
	}
	if res.Scan.StorageRows != 0 {
		t.Fatalf("EXPLAIN populated scan counters: %+v", res.Scan)
	}
}

// TestSessionTraceAttachesToResults covers SetTrace: while on, every
// statement's Result carries a rendered span tree — including commit
// spans on autocommit writes — and turning it off stops the attachment.
func TestSessionTraceAttachesToResults(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)

	s.SetTrace(true)
	if !s.TraceEnabled() {
		t.Fatal("TraceEnabled() = false after SetTrace(true)")
	}
	ins := exec(t, s, "INSERT INTO orders VALUES (4, 1, 14, 1.0, 'open')")
	insTrace := strings.Join(ins.Trace, "\n")
	if !strings.Contains(insTrace, "insert") || !strings.Contains(insTrace, "commit") {
		t.Fatalf("traced INSERT missing root or commit span:\n%s", insTrace)
	}
	// A read-only autocommit transaction touches no shards, so no commit
	// span is expected on the SELECT.
	sel := exec(t, s, "SELECT * FROM orders WHERE amount >= 10")
	selTrace := strings.Join(sel.Trace, "\n")
	for _, want := range []string{"select", "plan", "bind", "execute", "scan-page"} {
		if !strings.Contains(selTrace, want) {
			t.Fatalf("traced SELECT missing span %q:\n%s", want, selTrace)
		}
	}

	s.SetTrace(false)
	if res := exec(t, s, "SELECT * FROM orders WHERE amount >= 10"); len(res.Trace) != 0 {
		t.Fatalf("trace attached while disabled:\n%v", res.Trace)
	}
}

// TestTraceMultiShardCommit pins the 2PC fan-out spans: a traced explicit
// transaction writing two shards renders the prepare fan-out and the
// decision-durability (anchor commit) child spans. The non-anchor commit
// fan-out happens in the background after the ack, so it never appears in
// the client-visible trace.
func TestTraceMultiShardCommit(t *testing.T) {
	s := openSQL(t)
	loadOrders(t, s)
	s.SetTrace(true)
	exec(t, s, "BEGIN")
	exec(t, s, "INSERT INTO orders VALUES (5, 1, 15, 2.0, 'open')")
	exec(t, s, "INSERT INTO orders VALUES (6, 1, 16, 3.0, 'open')")
	res := exec(t, s, "COMMIT")
	trace := strings.Join(res.Trace, "\n")
	if !strings.Contains(trace, "2pc") {
		t.Skipf("writes landed on one shard; no 2PC fan-out to trace:\n%s", trace)
	}
	for _, want := range []string{"commit [2pc shards=", "2pc-prepare", "2pc-decide"} {
		if !strings.Contains(trace, want) {
			t.Fatalf("2PC trace missing %q:\n%s", want, trace)
		}
	}
}
