package gsql

import (
	"fmt"
	"strings"

	"globaldb/internal/table"
)

// accessKind is the access path a table scan uses.
type accessKind uint8

const (
	// accessPoint is a primary-key point lookup (all PK columns bound).
	accessPoint accessKind = iota + 1
	// accessPKPrefix is a single-shard scan over a PK prefix.
	accessPKPrefix
	// accessIndex is a single-shard secondary-index prefix scan.
	accessIndex
	// accessFull is an all-shard full table scan.
	accessFull
)

func (k accessKind) String() string {
	switch k {
	case accessPoint:
		return "point-get"
	case accessPKPrefix:
		return "pk-prefix-scan"
	case accessIndex:
		return "index-scan"
	case accessFull:
		return "full-scan"
	default:
		return fmt.Sprintf("accessKind(%d)", uint8(k))
	}
}

// boundTable is one FROM table resolved against the catalog.
type boundTable struct {
	ref    TableRef
	schema *table.Schema
}

// tableScan is the plan for reading one table.
type tableScan struct {
	tab  *boundTable
	kind accessKind
	// keyExprs are the expressions bound to the leading key columns (the
	// full PK for accessPoint, a PK prefix for accessPKPrefix, an index
	// prefix for accessIndex). For the inner side of a join they may
	// reference outer columns.
	keyExprs []Expr
	// index is the chosen index for accessIndex.
	index string
	// rangeCol is the column position (in the table's schema) the pushed
	// range bounds apply to: the first key column after the bound equality
	// prefix. -1 when no range is pushed. The bounds stay in the residual
	// filter too, so dropping them at execution time is always safe.
	rangeCol         int
	rangeLo, rangeHi Expr
	loExcl, hiExcl   bool
}

func (s *tableScan) describe() string {
	var sb strings.Builder
	sb.WriteString(s.kind.String())
	sb.WriteString(" on ")
	sb.WriteString(s.tab.schema.Name)
	if s.index != "" {
		sb.WriteString(" via index " + s.index)
	}
	if len(s.keyExprs) > 0 {
		parts := make([]string, len(s.keyExprs))
		for i, e := range s.keyExprs {
			parts[i] = e.String()
		}
		sb.WriteString(" [" + strings.Join(parts, ", ") + "]")
	}
	if s.rangeLo != nil || s.rangeHi != nil {
		col := s.tab.schema.Columns[s.rangeCol].Name
		var parts []string
		if s.rangeLo != nil {
			op := ">="
			if s.loExcl {
				op = ">"
			}
			parts = append(parts, col+" "+op+" "+s.rangeLo.String())
		}
		if s.rangeHi != nil {
			op := "<="
			if s.hiExcl {
				op = "<"
			}
			parts = append(parts, col+" "+op+" "+s.rangeHi.String())
		}
		sb.WriteString(" range (" + strings.Join(parts, ", ") + ")")
	}
	return sb.String()
}

// selectPlan is a fully planned SELECT.
type selectPlan struct {
	stmt   *Select
	tables []*boundTable // FROM order: [outer] or [outer, inner]
	outer  *tableScan
	inner  *tableScan // nil unless joined
	// filter is the residual predicate: WHERE for single-table plans,
	// WHERE AND ON for joins. Evaluated against the combined row.
	filter Expr

	// Output shape.
	outCols  []string // output column names
	outExprs []Expr   // one per output column (aggregates allowed)

	// Aggregation.
	grouped  bool
	aggs     []*FuncExpr // unique aggregate calls, in slot order
	aggKeys  []string    // String() of each agg, aligned with aggs
	groupBy  []Expr
	having   Expr
	orderBy  []OrderItem
	limit    int64
	offset   int64
	distinct bool

	// push is the DN-partial execution phase, when any part of the plan
	// can run on data nodes (see pushdown.go); nil otherwise. Execution
	// falls back to pure CN-side evaluation when disabled or when binding
	// fails, so push is an optimization, never a semantic dependency.
	push *pushPlan

	// join is the join-strategy analysis for two-table plans (see
	// join.go): which physical strategies beyond nested-loop this plan can
	// execute with, precompiled. nil when only nested-loop applies.
	join *joinPlan
}

// describe renders the plan for EXPLAIN.
func (p *selectPlan) describe() []string {
	out := []string{"select"}
	if p.grouped {
		out = append(out, fmt.Sprintf("  aggregate: %d functions, %d group keys", len(p.aggs), len(p.groupBy)))
	}
	out = append(out, "  outer: "+p.outer.describe())
	if p.inner != nil {
		if p.join == nil {
			out = append(out, "  inner (nested-loop join): "+p.inner.describe())
		} else {
			out = append(out, "  inner: "+p.inner.describe())
			out = append(out, p.join.describe(p)...)
		}
	}
	if p.filter != nil {
		out = append(out, "  filter: "+p.filter.String())
	}
	if p.push != nil {
		out = append(out, p.push.describe(p)...)
	}
	if len(p.orderBy) > 0 {
		parts := make([]string, len(p.orderBy))
		for i, o := range p.orderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		out = append(out, "  order by: "+strings.Join(parts, ", "))
	}
	if p.limit >= 0 {
		out = append(out, fmt.Sprintf("  limit: %d", p.limit))
	}
	if p.offset > 0 {
		out = append(out, fmt.Sprintf("  offset: %d", p.offset))
	}
	if p.distinct {
		out = append(out, "  distinct")
	}
	return out
}

// boundPlan is one execution of a selectPlan: the immutable plan plus the
// parameter values bound for this run and the LIMIT/OFFSET resolved from
// any placeholder. Planning happens once per statement text; binding
// happens per execution, which is what lets prepared statements skip the
// parser and planner entirely on the hot path.
type boundPlan struct {
	*selectPlan
	params []any
	limit  int64
	offset int64
	// noPushdown forces CN-side evaluation for this execution (session
	// toggle and the pushdown-vs-CN differential tests).
	noPushdown bool
	// joinMode is the session's SET JOIN strategy request for this
	// execution (joinAuto lets resolveJoin decide from estimates).
	joinMode joinStrategy
	// rowEst, when non-nil, returns a table's approximate row count for
	// AUTO strategy selection. Advisory only.
	rowEst func(tableName string) int64
	// chosenJoin records the strategy buildPipeline actually wired, so
	// results and traces can report it.
	chosenJoin joinStrategy
}

// bind attaches one execution's parameter values to a plan. The plan is
// not modified, so it can be rebound with fresh values on every call.
func (p *selectPlan) bind(params []any) (*boundPlan, error) {
	bp := &boundPlan{selectPlan: p, params: params, limit: p.limit, offset: p.offset}
	if e := p.stmt.LimitExpr; e != nil {
		n, err := resolveCount(e, params, "LIMIT")
		if err != nil {
			return nil, err
		}
		bp.limit = n
	}
	if e := p.stmt.OffsetExpr; e != nil {
		n, err := resolveCount(e, params, "OFFSET")
		if err != nil {
			return nil, err
		}
		bp.offset = n
	}
	return bp, nil
}

// resolveCount evaluates a parameterized LIMIT/OFFSET to a non-negative
// count.
func resolveCount(e Expr, params []any, what string) (int64, error) {
	v, err := evalExpr(e, &rowEnv{params: params})
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("%w: %s must bind a BIGINT, got %T", ErrType, what, v)
	}
	if n < 0 {
		return 0, fmt.Errorf("gsql: negative %s %d", what, n)
	}
	return n, nil
}

// catalog abstracts schema lookup for planning.
type catalog interface {
	Schema(name string) (*table.Schema, error)
}

// planSelect resolves and plans a SELECT statement.
func planSelect(cat catalog, sel *Select) (*selectPlan, error) {
	outerSchema, err := cat.Schema(sel.From.Table)
	if err != nil {
		return nil, err
	}
	tables := []*boundTable{{ref: sel.From, schema: outerSchema}}
	if sel.Join != nil {
		innerSchema, err := cat.Schema(sel.Join.Table)
		if err != nil {
			return nil, err
		}
		if sel.Join.refName() == sel.From.refName() {
			return nil, fmt.Errorf("gsql: duplicate table name %q in FROM; use aliases", sel.Join.refName())
		}
		tables = append(tables, &boundTable{ref: *sel.Join, schema: innerSchema})
	}

	p := &selectPlan{
		stmt: sel, tables: tables, orderBy: sel.OrderBy,
		limit: sel.Limit, offset: sel.Offset, distinct: sel.Distinct,
		having: sel.Having,
	}

	// Check all column references resolve.
	for _, it := range sel.Items {
		if _, ok := it.Expr.(*Star); ok {
			continue
		}
		if err := checkRefs(it.Expr, tables); err != nil {
			return nil, err
		}
	}
	conjs := conjuncts(sel.Where)
	if sel.On != nil {
		conjs = append(conjs, conjuncts(sel.On)...)
	}
	for _, c := range conjs {
		if err := checkRefs(c, tables); err != nil {
			return nil, err
		}
	}
	for _, g := range sel.GroupBy {
		if err := checkRefs(g, tables); err != nil {
			return nil, err
		}
	}
	for _, o := range sel.OrderBy {
		// ORDER BY may also name a select alias; rewrite it first.
		rewritten := rewriteAlias(o.Expr, sel.Items)
		if err := checkRefs(rewritten, tables); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := checkRefs(sel.Having, tables); err != nil {
			return nil, err
		}
	}

	// Residual filter: WHERE (plus ON for joins).
	p.filter = sel.Where
	if sel.On != nil {
		if p.filter == nil {
			p.filter = sel.On
		} else {
			p.filter = &BinaryExpr{Op: "AND", Left: p.filter, Right: sel.On}
		}
	}

	// Access paths. The outer table binds only conjuncts whose value side
	// is constant; the inner may bind outer column references too.
	p.outer = chooseAccess(tables[0], conjs, tables, nil)
	if len(tables) == 2 {
		p.inner = chooseAccess(tables[1], conjs, tables, tables[0])
	}

	// Output columns.
	if err := p.buildOutputs(); err != nil {
		return nil, err
	}
	// Rewrite ORDER BY aliases after outputs are known.
	for i := range p.orderBy {
		p.orderBy[i].Expr = rewriteAlias(p.orderBy[i].Expr, sel.Items)
	}

	// Aggregation analysis.
	p.groupBy = sel.GroupBy
	for _, e := range p.outExprs {
		if isAggregate(e) {
			p.grouped = true
		}
	}
	if sel.Having != nil && isAggregate(sel.Having) {
		p.grouped = true
	}
	if len(sel.GroupBy) > 0 {
		p.grouped = true
	}
	if p.grouped {
		seen := map[string]bool{}
		collect := func(e Expr) {
			for _, f := range collectAggs(e) {
				k := f.String()
				if !seen[k] {
					seen[k] = true
					p.aggs = append(p.aggs, f)
					p.aggKeys = append(p.aggKeys, k)
				}
			}
		}
		for _, e := range p.outExprs {
			collect(e)
		}
		if sel.Having != nil {
			collect(sel.Having)
		}
		for _, o := range p.orderBy {
			collect(o.Expr)
		}
		// Non-aggregate outputs must be group-by expressions.
		if err := p.checkGrouping(); err != nil {
			return nil, err
		}
	}

	// Split the plan into DN-partial and CN-final phases where possible.
	p.push = analyzePushdown(p)
	// Decide which physical join strategies the plan can execute with.
	p.join = analyzeJoin(p)
	return p, nil
}

// buildOutputs expands stars and names output columns.
func (p *selectPlan) buildOutputs() error {
	for _, it := range p.stmt.Items {
		if _, ok := it.Expr.(*Star); ok {
			for _, bt := range p.tables {
				for ci, col := range bt.schema.Columns {
					_ = ci
					p.outCols = append(p.outCols, col.Name)
					p.outExprs = append(p.outExprs, &ColRef{Table: bt.ref.refName(), Name: col.Name})
				}
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = cr.Name
			} else {
				name = it.Expr.String()
			}
		}
		p.outCols = append(p.outCols, name)
		p.outExprs = append(p.outExprs, it.Expr)
	}
	if len(p.outExprs) == 0 {
		return fmt.Errorf("gsql: empty select list")
	}
	return nil
}

// checkGrouping verifies that every non-aggregate output expression appears
// in GROUP BY (by textual equality, the usual SQL shortcut).
func (p *selectPlan) checkGrouping() error {
	groupKeys := map[string]bool{}
	for _, g := range p.groupBy {
		groupKeys[g.String()] = true
	}
	for i, e := range p.outExprs {
		if isAggregate(e) {
			continue
		}
		if _, ok := e.(*Literal); ok {
			continue
		}
		if !groupKeys[e.String()] {
			if len(p.groupBy) == 0 {
				return fmt.Errorf("gsql: column %q must appear in GROUP BY or inside an aggregate", p.outCols[i])
			}
			return fmt.Errorf("gsql: output %q is neither aggregated nor grouped", p.outCols[i])
		}
	}
	return nil
}

// collectAggs gathers aggregate calls in an expression tree.
func collectAggs(e Expr) []*FuncExpr {
	var out []*FuncExpr
	switch x := e.(type) {
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			out = append(out, x)
			return out
		}
		for _, a := range x.Args {
			out = append(out, collectAggs(a)...)
		}
	case *BinaryExpr:
		out = append(out, collectAggs(x.Left)...)
		out = append(out, collectAggs(x.Right)...)
	case *UnaryExpr:
		out = append(out, collectAggs(x.X)...)
	case *IsNullExpr:
		out = append(out, collectAggs(x.X)...)
	case *InExpr:
		out = append(out, collectAggs(x.X)...)
		for _, it := range x.List {
			out = append(out, collectAggs(it)...)
		}
	case *BetweenExpr:
		out = append(out, collectAggs(x.X)...)
		out = append(out, collectAggs(x.Lo)...)
		out = append(out, collectAggs(x.Hi)...)
	}
	return out
}

// rewriteAlias substitutes select-item aliases in ORDER BY expressions.
func rewriteAlias(e Expr, items []SelectItem) Expr {
	cr, ok := e.(*ColRef)
	if !ok || cr.Table != "" {
		return e
	}
	for _, it := range items {
		if it.Alias == cr.Name {
			return it.Expr
		}
	}
	return e
}

// conjuncts splits an expression on AND.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// checkRefs verifies every column reference in e resolves unambiguously.
func checkRefs(e Expr, tables []*boundTable) error {
	switch x := e.(type) {
	case *ColRef:
		_, _, err := resolveCol(x, tables)
		return err
	case *Literal, *Placeholder, *Star, nil:
		return nil
	case *BinaryExpr:
		if err := checkRefs(x.Left, tables); err != nil {
			return err
		}
		return checkRefs(x.Right, tables)
	case *UnaryExpr:
		return checkRefs(x.X, tables)
	case *IsNullExpr:
		return checkRefs(x.X, tables)
	case *InExpr:
		if err := checkRefs(x.X, tables); err != nil {
			return err
		}
		for _, it := range x.List {
			if err := checkRefs(it, tables); err != nil {
				return err
			}
		}
		return nil
	case *BetweenExpr:
		if err := checkRefs(x.X, tables); err != nil {
			return err
		}
		if err := checkRefs(x.Lo, tables); err != nil {
			return err
		}
		return checkRefs(x.Hi, tables)
	case *FuncExpr:
		for _, a := range x.Args {
			if _, ok := a.(*Star); ok {
				continue
			}
			if err := checkRefs(a, tables); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("gsql: cannot analyze %T", e)
	}
}

// resolveCol finds the table and column positions of a reference.
func resolveCol(ref *ColRef, tables []*boundTable) (tab, col int, err error) {
	if ref.Table != "" {
		for ti, bt := range tables {
			if bt.ref.refName() == ref.Table {
				ci := bt.schema.ColIndex(ref.Name)
				if ci < 0 {
					return 0, 0, fmt.Errorf("gsql: table %s has no column %q", bt.ref.refName(), ref.Name)
				}
				return ti, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("gsql: unknown table %q", ref.Table)
	}
	found := -1
	foundCol := -1
	for ti, bt := range tables {
		ci := bt.schema.ColIndex(ref.Name)
		if ci < 0 {
			continue
		}
		if found >= 0 {
			return 0, 0, fmt.Errorf("gsql: ambiguous column %q", ref.Name)
		}
		found, foundCol = ti, ci
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("gsql: unknown column %q", ref.Name)
	}
	return found, foundCol, nil
}

// refsOnly reports whether e references columns only from the given tables
// (by index into the resolution set).
func refsOnly(e Expr, tables []*boundTable, allowed map[int]bool) bool {
	ok := true
	var walk func(Expr)
	walk = func(e Expr) {
		if !ok || e == nil {
			return
		}
		switch x := e.(type) {
		case *ColRef:
			ti, _, err := resolveCol(x, tables)
			if err != nil || !allowed[ti] {
				ok = false
			}
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.X)
		case *IsNullExpr:
			walk(x.X)
		case *InExpr:
			walk(x.X)
			for _, it := range x.List {
				walk(it)
			}
		case *BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return ok
}

// eqBinding is column = expr extracted from a conjunct.
type eqBinding struct {
	col  int // column position in the target schema
	expr Expr
}

// extractEq pulls equality bindings for target from the conjunct list.
// outer, when non-nil, allows the value side to reference the outer table
// (join lookups); otherwise the value side must be constant.
func extractEq(target *boundTable, targetIdx int, conjs []Expr, tables []*boundTable, outer *boundTable) map[int]Expr {
	allowed := map[int]bool{}
	if outer != nil {
		for ti, bt := range tables {
			if bt == outer {
				allowed[ti] = true
			}
		}
	}
	out := map[int]Expr{}
	for _, c := range conjs {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		for _, side := range [2][2]Expr{{b.Left, b.Right}, {b.Right, b.Left}} {
			colSide, valSide := side[0], side[1]
			cr, ok := colSide.(*ColRef)
			if !ok {
				continue
			}
			ti, ci, err := resolveCol(cr, tables)
			if err != nil || ti != targetIdx {
				continue
			}
			// The value side must not reference the target table itself.
			if !refsOnly(valSide, tables, allowed) {
				continue
			}
			if _, dup := out[ci]; !dup {
				out[ci] = valSide
			}
			break
		}
	}
	return out
}

// chooseAccess picks the cheapest access path for one table given the
// equality bindings available, then pushes any residual range on the next
// key column into the scan's bounds.
func chooseAccess(bt *boundTable, conjs []Expr, tables []*boundTable, outer *boundTable) *tableScan {
	targetIdx := -1
	for ti, t := range tables {
		if t == bt {
			targetIdx = ti
		}
	}
	eq := extractEq(bt, targetIdx, conjs, tables, outer)
	sch := bt.schema
	scan := func() *tableScan {
		// Point get: every PK column bound.
		if len(eq) > 0 {
			full := true
			keyExprs := make([]Expr, 0, len(sch.PK))
			for _, pkCol := range sch.PK {
				e, ok := eq[pkCol]
				if !ok {
					full = false
					break
				}
				keyExprs = append(keyExprs, e)
			}
			if full {
				return &tableScan{tab: bt, kind: accessPoint, keyExprs: keyExprs, rangeCol: -1}
			}
		}

		// PK prefix: leading PK columns bound, covering the distribution
		// column.
		pkPrefix := prefixBound(sch.PK, eq)
		pkCovers := coversShard(sch, sch.PK, pkPrefix)
		if pkPrefix > 0 && pkCovers {
			keyExprs := make([]Expr, pkPrefix)
			for i := 0; i < pkPrefix; i++ {
				keyExprs[i] = eq[sch.PK[i]]
			}
			pkScan := &tableScan{tab: bt, kind: accessPKPrefix, keyExprs: keyExprs, rangeCol: -1}
			if pkPrefix < len(sch.PK) {
				pkScan.rangeCol = sch.PK[pkPrefix]
			}
			// Prefer the longest usable index prefix if it binds more columns.
			if name, cols := bestIndex(sch, eq, pkPrefix); name != "" {
				return indexScanOf(bt, name, cols, eq)
			}
			return pkScan
		}

		// Secondary index with a usable (shard-covering) prefix.
		if name, cols := bestIndex(sch, eq, 0); name != "" {
			return indexScanOf(bt, name, cols, eq)
		}

		// Full scan: a range on the leading PK column still narrows every
		// shard's key range.
		return &tableScan{tab: bt, kind: accessFull, rangeCol: sch.PK[0]}
	}()
	if scan.rangeCol >= 0 {
		attachRange(scan, targetIdx, conjs, tables, outer)
	}
	return scan
}

func indexScanOf(bt *boundTable, name string, cols []int, eq map[int]Expr) *tableScan {
	keyExprs := make([]Expr, len(cols))
	for i, c := range cols {
		keyExprs[i] = eq[c]
	}
	s := &tableScan{tab: bt, kind: accessIndex, index: name, keyExprs: keyExprs, rangeCol: -1}
	for _, ix := range bt.schema.Indexes {
		if ix.Name == name && len(cols) < len(ix.Cols) {
			s.rangeCol = ix.Cols[len(cols)]
		}
	}
	return s
}

// attachRange extracts comparison conjuncts on scan.rangeCol whose value
// side is constant (or, for join inners, references only the outer table)
// and records them as pushed scan bounds. The conjuncts stay in the
// residual filter, so this is purely an access-path narrowing.
func attachRange(scan *tableScan, targetIdx int, conjs []Expr, tables []*boundTable, outer *boundTable) {
	allowed := map[int]bool{}
	if outer != nil {
		for ti, bt := range tables {
			if bt == outer {
				allowed[ti] = true
			}
		}
	}
	isRangeCol := func(e Expr) bool {
		cr, ok := e.(*ColRef)
		if !ok {
			return false
		}
		ti, ci, err := resolveCol(cr, tables)
		return err == nil && ti == targetIdx && ci == scan.rangeCol
	}
	setLo := func(e Expr, excl bool) {
		if scan.rangeLo == nil {
			scan.rangeLo, scan.loExcl = e, excl
		}
	}
	setHi := func(e Expr, excl bool) {
		if scan.rangeHi == nil {
			scan.rangeHi, scan.hiExcl = e, excl
		}
	}
	for _, c := range conjs {
		switch x := c.(type) {
		case *BinaryExpr:
			var op string
			var val Expr
			switch {
			case isRangeCol(x.Left) && refsOnly(x.Right, tables, allowed):
				op, val = x.Op, x.Right
			case isRangeCol(x.Right) && refsOnly(x.Left, tables, allowed):
				// Mirror the comparison so the column is on the left.
				val = x.Left
				switch x.Op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				default:
					op = ""
				}
			}
			switch op {
			case ">":
				setLo(val, true)
			case ">=":
				setLo(val, false)
			case "<":
				setHi(val, true)
			case "<=":
				setHi(val, false)
			}
		case *BetweenExpr:
			if !x.Neg && isRangeCol(x.X) &&
				refsOnly(x.Lo, tables, allowed) && refsOnly(x.Hi, tables, allowed) {
				setLo(x.Lo, false)
				setHi(x.Hi, false)
			}
		}
	}
}

// prefixBound counts how many leading columns of key are bound in eq.
func prefixBound(key []int, eq map[int]Expr) int {
	n := 0
	for _, c := range key {
		if _, ok := eq[c]; !ok {
			break
		}
		n++
	}
	return n
}

// coversShard reports whether the first n key columns include the
// distribution column (required for a single-shard scan).
func coversShard(sch *table.Schema, key []int, n int) bool {
	for i := 0; i < n && i < len(key); i++ {
		if key[i] == sch.ShardBy {
			return true
		}
	}
	return false
}

// bestIndex finds the index with the longest shard-covering bound prefix
// strictly longer than minLen. Returns its name and the bound column
// positions.
func bestIndex(sch *table.Schema, eq map[int]Expr, minLen int) (string, []int) {
	bestLen := minLen
	bestName := ""
	var bestCols []int
	for _, ix := range sch.Indexes {
		n := prefixBound(ix.Cols, eq)
		if n > bestLen && coversShard(sch, ix.Cols, n) {
			bestLen = n
			bestName = ix.Name
			bestCols = append([]int(nil), ix.Cols[:n]...)
		}
	}
	return bestName, bestCols
}
