package gsql

import (
	"strings"
	"testing"
)

// TestPlanCacheHits checks that repeating a statement text reuses the
// parsed plan instead of re-parsing, and that distinct parameter values
// share one cache entry.
func TestPlanCacheHits(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY (k))`)

	if _, err := s.Exec(bg, "INSERT INTO kv VALUES (?, ?)", 1, "a"); err != nil {
		t.Fatal(err)
	}
	hits0, _, _ := s.PlanCacheStats()
	for i := int64(2); i <= 5; i++ {
		if _, err := s.Exec(bg, "INSERT INTO kv VALUES (?, ?)", i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	hits1, _, _ := s.PlanCacheStats()
	if hits1-hits0 != 4 {
		t.Fatalf("INSERT reuse: %d cache hits, want 4", hits1-hits0)
	}

	for i := 0; i < 3; i++ {
		res, err := s.Exec(bg, "SELECT v FROM kv WHERE k = ?", 1)
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("select: %v %v", res, err)
		}
	}
	hits2, _, size := s.PlanCacheStats()
	if hits2-hits1 != 2 {
		t.Fatalf("SELECT reuse: %d cache hits, want 2", hits2-hits1)
	}
	if size == 0 {
		t.Fatal("plan cache is empty")
	}
}

// TestPlanCacheDDLInvalidation checks that a DDL commit invalidates cached
// plans: a SELECT * planned against the old schema must observe the new
// schema after DROP+CREATE, both on the Exec path and through a prepared
// statement held across the DDL.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE ledger (id BIGINT, amount DOUBLE, PRIMARY KEY (id))`)
	exec(t, s, `INSERT INTO ledger VALUES (1, 10.5)`)

	st, err := s.Prepare(bg, "SELECT * FROM ledger WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(bg, 1)
	if err != nil || len(res.Columns) != 2 {
		t.Fatalf("before DDL: %v %v", res, err)
	}
	if _, err := s.Exec(bg, "SELECT * FROM ledger WHERE id = ?", 1); err != nil {
		t.Fatal(err)
	}
	hitsBefore, missesBefore, _ := s.PlanCacheStats()

	// Replace the table with a wider schema. The catalog version moves, so
	// both the session cache entry and the prepared statement must replan.
	exec(t, s, "DROP TABLE ledger")
	exec(t, s, `CREATE TABLE ledger (id BIGINT, amount DOUBLE, note TEXT, PRIMARY KEY (id))`)
	exec(t, s, `INSERT INTO ledger VALUES (2, 20.5, 'new')`)

	res, err = s.Exec(bg, "SELECT * FROM ledger WHERE id = ?", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || res.Rows[0][2].(string) != "new" {
		t.Fatalf("Exec after DDL still sees the old plan: cols %v rows %v", res.Columns, res.Rows)
	}
	res, err = st.Exec(bg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Fatalf("prepared statement after DDL still sees the old plan: cols %v", res.Columns)
	}
	_, missesAfter, _ := s.PlanCacheStats()
	if missesAfter == missesBefore {
		t.Fatalf("DDL did not invalidate the cache (hits %d misses %d->%d)", hitsBefore, missesBefore, missesAfter)
	}

	// Dropping the table makes the cached-plan statement fail cleanly.
	exec(t, s, "DROP TABLE ledger")
	if _, err := st.Exec(bg, 1); err == nil || !strings.Contains(err.Error(), "ledger") {
		t.Fatalf("exec against a dropped table: %v", err)
	}
}

// TestPlanCacheLRU checks the cache stays bounded.
func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	c.put(&preparedStatement{text: "a"})
	c.put(&preparedStatement{text: "b"})
	if got := c.get("a", 0); got == nil {
		t.Fatal("a evicted too early")
	}
	c.put(&preparedStatement{text: "c"}) // evicts b (least recently used)
	if got := c.get("b", 0); got != nil {
		t.Fatal("b should have been evicted")
	}
	if c.get("a", 0) == nil || c.get("c", 0) == nil {
		t.Fatal("a and c should remain")
	}
	// Version mismatch evicts on lookup.
	c.put(&preparedStatement{text: "v", version: 1})
	if c.get("v", 2) != nil {
		t.Fatal("stale version must miss")
	}
	if c.get("v", 1) != nil {
		t.Fatal("stale entry must have been evicted")
	}
}
