package gsql

import (
	"errors"
	"strings"
	"testing"
)

func TestParsePlaceholderStyles(t *testing.T) {
	cases := []struct {
		sql  string
		want int // expected parameter count
	}{
		{"SELECT * FROM t WHERE a = ?", 1},
		{"SELECT * FROM t WHERE a = ? AND b = ?", 2},
		{"SELECT * FROM t WHERE a = $1 AND b = $2", 2},
		{"SELECT * FROM t WHERE a = $2 AND b = $1", 2},
		{"SELECT * FROM t WHERE a = $1 AND b = $1", 1},
		{"SELECT * FROM t WHERE a IN (?, ?, ?)", 3},
		{"SELECT * FROM t WHERE a BETWEEN ? AND ?", 2},
		{"SELECT * FROM t LIMIT ?", 1},
		{"SELECT * FROM t LIMIT ? OFFSET ?", 2},
		{"SELECT * FROM t WHERE a = ? ORDER BY b LIMIT ? OFFSET ?", 3},
		{"INSERT INTO t VALUES (?, ?), (?, ?)", 4},
		{"INSERT INTO t (a, b) VALUES ($1, $2)", 2},
		{"UPDATE t SET a = ?, b = ? WHERE c = ?", 3},
		{"DELETE FROM t WHERE a = ? OR b IN (?, ?)", 3},
		{"SELECT COALESCE(a, ?) FROM t", 1},
		{"SELECT * FROM t WHERE a = 1", 0},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.sql, err)
		}
		if got := CountParams(stmt); got != tc.want {
			t.Errorf("CountParams(%q) = %d, want %d", tc.sql, got, tc.want)
		}
	}
}

func TestParsePlaceholderErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM t WHERE a = ? AND b = $1", // mixed styles
		"SELECT * FROM t WHERE a = $1 AND b = ?", // mixed, other order
		"INSERT INTO t VALUES (?, $2)",           // mixed inside VALUES
		"SELECT * FROM t WHERE a = $0",           // positions are 1-based
		"SELECT * FROM t WHERE a = $",            // no number
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
	// Placeholder numbering resets between statements of a script, and a
	// style mix across statements is fine — the styles are per statement.
	stmts, err := ParseAll("SELECT * FROM t WHERE a = ?; SELECT * FROM t WHERE b = $1")
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	for i, st := range stmts {
		if got := CountParams(st); got != 1 {
			t.Errorf("statement %d: CountParams = %d, want 1", i, got)
		}
	}
}

func TestPlaceholderString(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = ? AND b IN (?, ?) LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	got := stmt.String()
	for _, want := range []string{"$1", "$2", "$3", "LIMIT $4"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}

// TestExecWithParams drives parameterized statements end to end: INSERT,
// point get, IN list, parameterized LIMIT, UPDATE and DELETE.
func TestExecWithParams(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE items (w_id BIGINT, i_id BIGINT, name TEXT, price DOUBLE,
		PRIMARY KEY (w_id, i_id)) SHARD BY w_id`)

	ins, err := s.Prepare(bg, "INSERT INTO items VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if _, err := ins.Exec(bg, int64(1), i, "item", float64(i)*2); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	// Point get through a prepared statement; int args normalize to int64.
	get, err := s.Prepare(bg, "SELECT price FROM items WHERE w_id = $1 AND i_id = $2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		res, err := get.Exec(bg, 1, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].(float64) != float64(i)*2 {
			t.Fatalf("point get %d: %v", i, res.Rows)
		}
	}

	// IN list and parameterized LIMIT.
	res, err := s.Exec(bg, "SELECT i_id FROM items WHERE w_id = ? AND i_id IN (?, ?, ?) ORDER BY i_id LIMIT ?",
		1, 2, 4, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].(int64) != 2 || res.Rows[1][0].(int64) != 4 {
		t.Fatalf("IN+LIMIT: %v", res.Rows)
	}

	// UPDATE and DELETE with parameters.
	res, err = s.Exec(bg, "UPDATE items SET price = price + ? WHERE w_id = ? AND i_id = ?", 0.5, 1, 1)
	if err != nil || res.Affected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	res, err = s.Exec(bg, "DELETE FROM items WHERE w_id = $1 AND i_id > $2", 1, 8)
	if err != nil || res.Affected != 2 {
		t.Fatalf("delete: %v %v", res, err)
	}

	// Arity errors, both directions.
	if _, err := s.Exec(bg, "SELECT * FROM items WHERE w_id = ?"); err == nil {
		t.Fatal("missing parameter must fail")
	}
	if _, err := s.Exec(bg, "SELECT * FROM items WHERE w_id = ?", 1, 2); err == nil {
		t.Fatal("extra parameter must fail")
	}
	if _, err := s.Exec(bg, "SELECT * FROM items WHERE w_id = ? LIMIT ?", 1, "ten"); err == nil {
		t.Fatal("non-integer LIMIT parameter must fail")
	}
	if _, err := s.Exec(bg, "SELECT * FROM items WHERE w_id = ?", struct{}{}); !errors.Is(err, ErrType) {
		t.Fatalf("unsupported parameter type: got %v", err)
	}
}

// TestQueryStreamsWithParams checks the streaming Query entry point,
// including DISTINCT/OFFSET handling on the streamed path.
func TestQueryStreamsWithParams(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE nums (w_id BIGINT, n BIGINT, PRIMARY KEY (w_id, n)) SHARD BY w_id`)
	for i := int64(1); i <= 20; i++ {
		if _, err := s.Exec(bg, "INSERT INTO nums VALUES (?, ?)", int64(1), i); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Query(bg, "SELECT n FROM nums WHERE w_id = ? AND n > ? ORDER BY n LIMIT ? OFFSET ?",
		1, 5, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []int64
	for rows.Next() {
		got = append(got, rows.Row()[0].(int64))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 8 || got[3] != 11 {
		t.Fatalf("streamed rows: %v", got)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Aggregates run through the materialized fallback of the same API.
	rows, err = s.Query(bg, "SELECT COUNT(*) FROM nums WHERE n <= ?", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() || rows.Row()[0].(int64) != 10 {
		t.Fatalf("aggregate via Query: %v (err %v)", rows.Row(), rows.Err())
	}

	// Query rejects non-SELECT statements with the sentinel.
	if _, err := s.Query(bg, "SHOW TABLES"); !errors.Is(err, ErrNotSelect) {
		t.Fatalf("SHOW via Query: got %v", err)
	}
}
