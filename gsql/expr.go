package gsql

import (
	"fmt"
	"math"
	"strings"

	"globaldb/gsql/fragment"
)

// The scalar kernel — value comparison, arithmetic, LIKE matching and the
// type-error sentinel — lives in gsql/fragment and is shared with the
// data-node-side evaluator, so a predicate pushed to a data node cannot
// drift from the same predicate evaluated here.

// ErrType is returned when an expression combines incompatible values. It
// aliases the fragment evaluator's sentinel: both sides of the CN/DN
// execution split wrap the same error.
var ErrType = fragment.ErrType

// compare orders two non-nil SQL values. Mixed int64/float64 compare
// numerically; otherwise both sides must share a type.
func compare(a, b any) (int, error) { return fragment.Compare(a, b) }

// arith applies +, -, *, /, % to two non-nil values.
func arith(op string, a, b any) (any, error) { return fragment.Arith(op, a, b) }

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) (bool, error) { return fragment.LikeMatch(s, pattern) }

// truthy interprets a value as a SQL condition; NULL is false.
func truthy(v any) (bool, error) {
	switch x := v.(type) {
	case nil:
		return false, nil
	case bool:
		return x, nil
	default:
		return false, fmt.Errorf("%w: %T used as a condition", ErrType, v)
	}
}

// evalEnv resolves column references and statement parameters during
// evaluation.
type evalEnv interface {
	// colValue returns the value of a resolved column reference.
	colValue(ref *ColRef) (any, error)
	// paramValue returns the value bound to a 1-based parameter position.
	paramValue(idx int) (any, error)
}

// evalExpr evaluates a scalar expression against an environment. Aggregate
// calls must have been rewritten away by the planner before this runs.
func evalExpr(e Expr, env evalEnv) (any, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColRef:
		return env.colValue(x)
	case *Placeholder:
		return env.paramValue(x.Idx)
	case *Star:
		return nil, fmt.Errorf("gsql: '*' is only valid in SELECT lists and COUNT(*)")
	case *UnaryExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			if v == nil {
				return nil, nil
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("%w: NOT %T", ErrType, v)
			}
			return !b, nil
		case "-":
			switch n := v.(type) {
			case nil:
				return nil, nil
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("%w: -%T", ErrType, v)
		}
		return nil, fmt.Errorf("gsql: unknown unary operator %q", x.Op)
	case *BinaryExpr:
		return evalBinary(x, env)
	case *IsNullExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Neg, nil
	case *InExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		for _, item := range x.List {
			iv, err := evalExpr(item, env)
			if err != nil {
				return nil, err
			}
			if iv == nil {
				continue
			}
			c, err := compare(v, iv)
			if err != nil {
				return nil, err
			}
			if c == 0 {
				return !x.Neg, nil
			}
		}
		return x.Neg, nil
	case *BetweenExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		lo, err := evalExpr(x.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := evalExpr(x.Hi, env)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		cl, err := compare(v, lo)
		if err != nil {
			return nil, err
		}
		ch, err := compare(v, hi)
		if err != nil {
			return nil, err
		}
		return (cl >= 0 && ch <= 0) != x.Neg, nil
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return nil, fmt.Errorf("gsql: aggregate %s in a scalar context", x.Name)
		}
		return evalScalarFunc(x, env)
	default:
		return nil, fmt.Errorf("gsql: cannot evaluate %T", e)
	}
}

func evalBinary(x *BinaryExpr, env evalEnv) (any, error) {
	switch x.Op {
	case "AND":
		lv, err := evalExpr(x.Left, env)
		if err != nil {
			return nil, err
		}
		if lb, ok := lv.(bool); ok && !lb {
			return false, nil // short circuit
		}
		rv, err := evalExpr(x.Right, env)
		if err != nil {
			return nil, err
		}
		if rb, ok := rv.(bool); ok && !rb {
			return false, nil
		}
		if lv == nil || rv == nil {
			return nil, nil
		}
		lb, lok := lv.(bool)
		rb, rok := rv.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("%w: %T AND %T", ErrType, lv, rv)
		}
		return lb && rb, nil
	case "OR":
		lv, err := evalExpr(x.Left, env)
		if err != nil {
			return nil, err
		}
		if lb, ok := lv.(bool); ok && lb {
			return true, nil
		}
		rv, err := evalExpr(x.Right, env)
		if err != nil {
			return nil, err
		}
		if rb, ok := rv.(bool); ok && rb {
			return true, nil
		}
		if lv == nil || rv == nil {
			return nil, nil
		}
		lb, lok := lv.(bool)
		rb, rok := rv.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("%w: %T OR %T", ErrType, lv, rv)
		}
		return lb || rb, nil
	}
	lv, err := evalExpr(x.Left, env)
	if err != nil {
		return nil, err
	}
	rv, err := evalExpr(x.Right, env)
	if err != nil {
		return nil, err
	}
	if lv == nil || rv == nil {
		return nil, nil // SQL three-valued logic: NULL propagates
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := compare(lv, rv)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	case "LIKE":
		s, sok := lv.(string)
		pat, pok := rv.(string)
		if !sok || !pok {
			return nil, fmt.Errorf("%w: %T LIKE %T", ErrType, lv, rv)
		}
		return likeMatch(s, pat)
	case "+", "-", "*", "/", "%":
		return arith(x.Op, lv, rv)
	}
	return nil, fmt.Errorf("gsql: unknown operator %q", x.Op)
}

func evalScalarFunc(f *FuncExpr, env evalEnv) (any, error) {
	if f.Name == "COALESCE" {
		for _, a := range f.Args {
			v, err := evalExpr(a, env)
			if err != nil {
				return nil, err
			}
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("gsql: %s takes one argument", f.Name)
	}
	v, err := evalExpr(f.Args[0], env)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	switch f.Name {
	case "ABS":
		switch n := v.(type) {
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			return math.Abs(n), nil
		}
		return nil, fmt.Errorf("%w: ABS(%T)", ErrType, v)
	case "LOWER":
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("%w: LOWER(%T)", ErrType, v)
		}
		return strings.ToLower(s), nil
	case "UPPER":
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("%w: UPPER(%T)", ErrType, v)
		}
		return strings.ToUpper(s), nil
	case "LENGTH":
		switch s := v.(type) {
		case string:
			return int64(len(s)), nil
		case []byte:
			return int64(len(s)), nil
		}
		return nil, fmt.Errorf("%w: LENGTH(%T)", ErrType, v)
	}
	return nil, fmt.Errorf("gsql: unknown function %q", f.Name)
}
