package gsql

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
)

// ErrType is returned when an expression combines incompatible values.
var ErrType = errors.New("gsql: type error")

// compare orders two non-nil SQL values. Mixed int64/float64 compare
// numerically; otherwise both sides must share a type.
func compare(a, b any) (int, error) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			switch {
			case x < y:
				return -1, nil
			case x > y:
				return 1, nil
			}
			return 0, nil
		case float64:
			return cmpFloat(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmpFloat(x, float64(y)), nil
		case float64:
			return cmpFloat(x, y), nil
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y), nil
		}
	case []byte:
		if y, ok := b.([]byte); ok {
			return strings.Compare(string(x), string(y)), nil
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case !x && y:
				return -1, nil
			case x && !y:
				return 1, nil
			}
			return 0, nil
		}
	}
	return 0, fmt.Errorf("%w: cannot compare %T and %T", ErrType, a, b)
}

func cmpFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// arith applies +, -, *, /, % to two non-nil values.
func arith(op string, a, b any) (any, error) {
	ai, aIsInt := a.(int64)
	bi, bIsInt := b.(int64)
	if aIsInt && bIsInt {
		switch op {
		case "+":
			return ai + bi, nil
		case "-":
			return ai - bi, nil
		case "*":
			return ai * bi, nil
		case "/":
			if bi == 0 {
				return nil, fmt.Errorf("gsql: division by zero")
			}
			return ai / bi, nil
		case "%":
			if bi == 0 {
				return nil, fmt.Errorf("gsql: division by zero")
			}
			return ai % bi, nil
		}
	}
	af, aOK := toFloat(a)
	bf, bOK := toFloat(b)
	if !aOK || !bOK {
		// String concatenation via + is a convenience extension.
		if op == "+" {
			as, aStr := a.(string)
			bs, bStr := b.(string)
			if aStr && bStr {
				return as + bs, nil
			}
		}
		return nil, fmt.Errorf("%w: %T %s %T", ErrType, a, op, b)
	}
	switch op {
	case "+":
		return af + bf, nil
	case "-":
		return af - bf, nil
	case "*":
		return af * bf, nil
	case "/":
		if bf == 0 {
			return nil, fmt.Errorf("gsql: division by zero")
		}
		return af / bf, nil
	case "%":
		if bf == 0 {
			return nil, fmt.Errorf("gsql: division by zero")
		}
		return math.Mod(af, bf), nil
	}
	return nil, fmt.Errorf("gsql: unknown operator %q", op)
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// truthy interprets a value as a SQL condition; NULL is false.
func truthy(v any) (bool, error) {
	switch x := v.(type) {
	case nil:
		return false, nil
	case bool:
		return x, nil
	default:
		return false, fmt.Errorf("%w: %T used as a condition", ErrType, v)
	}
}

// likeCache memoizes compiled LIKE patterns.
var likeCache sync.Map // string -> *regexp.Regexp

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) (bool, error) {
	if cached, ok := likeCache.Load(pattern); ok {
		return cached.(*regexp.Regexp).MatchString(s), nil
	}
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return false, fmt.Errorf("gsql: bad LIKE pattern %q: %v", pattern, err)
	}
	likeCache.Store(pattern, re)
	return re.MatchString(s), nil
}

// evalEnv resolves column references and statement parameters during
// evaluation.
type evalEnv interface {
	// colValue returns the value of a resolved column reference.
	colValue(ref *ColRef) (any, error)
	// paramValue returns the value bound to a 1-based parameter position.
	paramValue(idx int) (any, error)
}

// evalExpr evaluates a scalar expression against an environment. Aggregate
// calls must have been rewritten away by the planner before this runs.
func evalExpr(e Expr, env evalEnv) (any, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColRef:
		return env.colValue(x)
	case *Placeholder:
		return env.paramValue(x.Idx)
	case *Star:
		return nil, fmt.Errorf("gsql: '*' is only valid in SELECT lists and COUNT(*)")
	case *UnaryExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "NOT":
			if v == nil {
				return nil, nil
			}
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("%w: NOT %T", ErrType, v)
			}
			return !b, nil
		case "-":
			switch n := v.(type) {
			case nil:
				return nil, nil
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, fmt.Errorf("%w: -%T", ErrType, v)
		}
		return nil, fmt.Errorf("gsql: unknown unary operator %q", x.Op)
	case *BinaryExpr:
		return evalBinary(x, env)
	case *IsNullExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Neg, nil
	case *InExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, nil
		}
		for _, item := range x.List {
			iv, err := evalExpr(item, env)
			if err != nil {
				return nil, err
			}
			if iv == nil {
				continue
			}
			c, err := compare(v, iv)
			if err != nil {
				return nil, err
			}
			if c == 0 {
				return !x.Neg, nil
			}
		}
		return x.Neg, nil
	case *BetweenExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		lo, err := evalExpr(x.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := evalExpr(x.Hi, env)
		if err != nil {
			return nil, err
		}
		if v == nil || lo == nil || hi == nil {
			return nil, nil
		}
		cl, err := compare(v, lo)
		if err != nil {
			return nil, err
		}
		ch, err := compare(v, hi)
		if err != nil {
			return nil, err
		}
		return (cl >= 0 && ch <= 0) != x.Neg, nil
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return nil, fmt.Errorf("gsql: aggregate %s in a scalar context", x.Name)
		}
		return evalScalarFunc(x, env)
	default:
		return nil, fmt.Errorf("gsql: cannot evaluate %T", e)
	}
}

func evalBinary(x *BinaryExpr, env evalEnv) (any, error) {
	switch x.Op {
	case "AND":
		lv, err := evalExpr(x.Left, env)
		if err != nil {
			return nil, err
		}
		if lb, ok := lv.(bool); ok && !lb {
			return false, nil // short circuit
		}
		rv, err := evalExpr(x.Right, env)
		if err != nil {
			return nil, err
		}
		if rb, ok := rv.(bool); ok && !rb {
			return false, nil
		}
		if lv == nil || rv == nil {
			return nil, nil
		}
		lb, lok := lv.(bool)
		rb, rok := rv.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("%w: %T AND %T", ErrType, lv, rv)
		}
		return lb && rb, nil
	case "OR":
		lv, err := evalExpr(x.Left, env)
		if err != nil {
			return nil, err
		}
		if lb, ok := lv.(bool); ok && lb {
			return true, nil
		}
		rv, err := evalExpr(x.Right, env)
		if err != nil {
			return nil, err
		}
		if rb, ok := rv.(bool); ok && rb {
			return true, nil
		}
		if lv == nil || rv == nil {
			return nil, nil
		}
		lb, lok := lv.(bool)
		rb, rok := rv.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("%w: %T OR %T", ErrType, lv, rv)
		}
		return lb || rb, nil
	}
	lv, err := evalExpr(x.Left, env)
	if err != nil {
		return nil, err
	}
	rv, err := evalExpr(x.Right, env)
	if err != nil {
		return nil, err
	}
	if lv == nil || rv == nil {
		return nil, nil // SQL three-valued logic: NULL propagates
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, err := compare(lv, rv)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	case "LIKE":
		s, sok := lv.(string)
		pat, pok := rv.(string)
		if !sok || !pok {
			return nil, fmt.Errorf("%w: %T LIKE %T", ErrType, lv, rv)
		}
		return likeMatch(s, pat)
	case "+", "-", "*", "/", "%":
		return arith(x.Op, lv, rv)
	}
	return nil, fmt.Errorf("gsql: unknown operator %q", x.Op)
}

func evalScalarFunc(f *FuncExpr, env evalEnv) (any, error) {
	if f.Name == "COALESCE" {
		for _, a := range f.Args {
			v, err := evalExpr(a, env)
			if err != nil {
				return nil, err
			}
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	}
	if len(f.Args) != 1 {
		return nil, fmt.Errorf("gsql: %s takes one argument", f.Name)
	}
	v, err := evalExpr(f.Args[0], env)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	switch f.Name {
	case "ABS":
		switch n := v.(type) {
		case int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case float64:
			return math.Abs(n), nil
		}
		return nil, fmt.Errorf("%w: ABS(%T)", ErrType, v)
	case "LOWER":
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("%w: LOWER(%T)", ErrType, v)
		}
		return strings.ToLower(s), nil
	case "UPPER":
		s, ok := v.(string)
		if !ok {
			return nil, fmt.Errorf("%w: UPPER(%T)", ErrType, v)
		}
		return strings.ToUpper(s), nil
	case "LENGTH":
		switch s := v.(type) {
		case string:
			return int64(len(s)), nil
		case []byte:
			return int64(len(s)), nil
		}
		return nil, fmt.Errorf("%w: LENGTH(%T)", ErrType, v)
	}
	return nil, fmt.Errorf("gsql: unknown function %q", f.Name)
}
