package gsql

import (
	"container/list"
	"fmt"
)

// defaultPlanCacheCap bounds the per-session plan cache. A session rarely
// runs more than a few hundred distinct statement shapes; parameterized
// statements collapse whole workloads onto a handful of entries.
const defaultPlanCacheCap = 256

// preparedStatement is one parsed (and, for SELECT, planned) statement.
// version records the catalog DDL version the plan was built against; a
// mismatch at lookup time forces a replan, so cached plans never outlive a
// CREATE/DROP that could have changed the schemas they reference.
type preparedStatement struct {
	text      string
	stmt      Statement
	numParams int
	plan      *selectPlan // non-nil for SELECT
	version   uint64      // catalog DDL version at plan time
}

// planCache is an LRU of preparedStatements keyed by SQL text. It belongs
// to one Session and inherits the session's no-concurrency contract, so it
// is unsynchronized.
type planCache struct {
	cap          int
	ll           *list.List // front = most recently used; values *preparedStatement
	byText       map[string]*list.Element
	hits, misses uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), byText: make(map[string]*list.Element)}
}

// get returns the cached statement for text when present and still valid
// for the given catalog version. A stale entry is evicted and reported as
// a miss.
func (c *planCache) get(text string, version uint64) *preparedStatement {
	el, ok := c.byText[text]
	if !ok {
		c.misses++
		return nil
	}
	cs := el.Value.(*preparedStatement)
	if cs.version != version {
		c.ll.Remove(el)
		delete(c.byText, text)
		c.misses++
		return nil
	}
	c.ll.MoveToFront(el)
	c.hits++
	return cs
}

// put inserts a statement, evicting the least recently used entry when the
// cache is full.
func (c *planCache) put(cs *preparedStatement) {
	if el, ok := c.byText[cs.text]; ok {
		el.Value = cs
		c.ll.MoveToFront(el)
		return
	}
	c.byText[cs.text] = c.ll.PushFront(cs)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byText, oldest.Value.(*preparedStatement).text)
	}
}

// PlanCacheStats reports the session plan cache's hit/miss counters and
// current size, for observability and tests.
func (s *Session) PlanCacheStats() (hits, misses uint64, size int) {
	return s.plans.hits, s.plans.misses, s.plans.ll.Len()
}

// cachedStatement returns the parsed+planned form of sql, consulting the
// session plan cache first. Entries are keyed by the exact statement text
// and invalidated when the cluster catalog's DDL version moves.
func (s *Session) cachedStatement(sql string) (*preparedStatement, error) {
	version := s.db.CatalogVersion()
	if cs := s.plans.get(sql, version); cs != nil {
		return cs, nil
	}
	cs, err := s.prepareText(sql, version)
	if err != nil {
		return nil, err
	}
	s.plans.put(cs)
	return cs, nil
}

// prepareText parses sql and plans it when it is a SELECT.
func (s *Session) prepareText(sql string, version uint64) (*preparedStatement, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	cs := &preparedStatement{text: sql, stmt: stmt, numParams: CountParams(stmt), version: version}
	if sel, ok := stmt.(*Select); ok {
		if cs.plan, err = planSelect(s, sel); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// bindArgs normalizes parameter values and checks their count against the
// statement's placeholder count.
func bindArgs(numParams int, args []any) ([]any, error) {
	params, err := normalizeArgs(args)
	if err != nil {
		return nil, err
	}
	if len(params) != numParams {
		return nil, fmt.Errorf("gsql: statement expects %d parameters, got %d", numParams, len(params))
	}
	return params, nil
}
