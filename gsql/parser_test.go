package gsql

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func mustFail(t *testing.T, sql string) error {
	t.Helper()
	_, err := Parse(sql)
	if err == nil {
		t.Fatalf("Parse(%q) succeeded, want error", sql)
	}
	return err
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b2 FROM t WHERE x >= 1.5 AND y <> 'it''s';")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b2", "FROM", "t", "WHERE", "x", ">=", "1.5", "AND", "y", "<>", "it's", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Fatal("missing EOF token")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("SELECT 1 -- trailing\n/* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.text)
	}
	if strings.Join(texts, " ") != "SELECT 1 + 2" {
		t.Fatalf("got %v", texts)
	}
}

func TestLexNormalizesOperators(t *testing.T) {
	toks, _ := lex("a != b == c")
	if toks[1].text != "<>" || toks[3].text != "=" {
		t.Fatalf("got %q %q", toks[1].text, toks[3].text)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string must fail")
	}
	if _, err := lex("SELECT a @ b"); err == nil {
		t.Fatal("bad character must fail")
	}
	if _, err := lex("SELECT $x"); err == nil {
		t.Fatal("'$' without a parameter number must fail")
	}
	// '?' lexes as a placeholder now; it still cannot sit between operands.
	if _, err := Parse("SELECT a ? b FROM t"); err == nil {
		t.Fatal("misplaced placeholder must fail to parse")
	}
}

func TestLexNumberForms(t *testing.T) {
	for _, src := range []string{"1", "12.5", ".5", "1e9", "2.5E-3", "7e+2"} {
		toks, err := lex(src)
		if err != nil {
			t.Fatalf("lex(%q): %v", src, err)
		}
		if toks[0].kind != tokNumber {
			t.Fatalf("lex(%q): kind %v", src, toks[0].kind)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE accounts (
		id BIGINT, owner VARCHAR(32), balance DOUBLE,
		PRIMARY KEY (id),
		INDEX accounts_owner (id, owner)
	) SHARD BY id WITH SYNC REPLICATION`)
	ct := stmt.(*CreateTable)
	if ct.Name != "accounts" || len(ct.Columns) != 3 {
		t.Fatalf("bad create: %+v", ct)
	}
	if ct.Columns[1].Type != "TEXT" {
		t.Fatalf("VARCHAR must normalize to TEXT, got %s", ct.Columns[1].Type)
	}
	if len(ct.PK) != 1 || ct.PK[0] != "id" {
		t.Fatalf("PK = %v", ct.PK)
	}
	if len(ct.Indexes) != 1 || ct.Indexes[0].Name != "accounts_owner" || len(ct.Indexes[0].Cols) != 2 {
		t.Fatalf("indexes = %v", ct.Indexes)
	}
	if ct.ShardBy != "id" || !ct.Sync {
		t.Fatalf("shard/sync = %q %v", ct.ShardBy, ct.Sync)
	}
}

func TestParseCreateTableRequiresPK(t *testing.T) {
	mustFail(t, "CREATE TABLE t (a BIGINT)")
}

func TestParseCreateTableTypeLengths(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE t (a DECIMAL(10,2), b CHAR(1), PRIMARY KEY (a))")
	ct := stmt.(*CreateTable)
	if ct.Columns[0].Type != "DOUBLE" || ct.Columns[1].Type != "TEXT" {
		t.Fatalf("types = %+v", ct.Columns)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("bad insert: %+v", ins)
	}
	if v := ins.Rows[0][0].(*Literal).Val; v != int64(1) {
		t.Fatalf("value = %v (%T)", v, v)
	}
	if ins.Rows[1][1].(*Literal).Val != nil {
		t.Fatal("expected NULL literal")
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt := mustParse(t, `SELECT w_id, COUNT(*) AS n, SUM(amount) total
		FROM orders o JOIN lines l ON o.w_id = l.w_id
		WHERE o.status = 'open' AND amount > 10
		GROUP BY w_id HAVING COUNT(*) > 2
		ORDER BY n DESC, w_id LIMIT 10 AS OF STALENESS '250ms'`)
	sel := stmt.(*Select)
	if len(sel.Items) != 3 || sel.Items[1].Alias != "n" || sel.Items[2].Alias != "total" {
		t.Fatalf("items: %+v", sel.Items)
	}
	if sel.Join == nil || sel.Join.Table != "lines" || sel.Join.Alias != "l" {
		t.Fatalf("join: %+v", sel.Join)
	}
	if sel.On == nil || sel.Where == nil || sel.Having == nil {
		t.Fatal("missing clauses")
	}
	if len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("group/order: %v %v", sel.GroupBy, sel.OrderBy)
	}
	if sel.Limit != 10 || sel.Staleness != 250*time.Millisecond {
		t.Fatalf("limit/staleness: %d %v", sel.Limit, sel.Staleness)
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t").(*Select)
	if len(sel.Items) != 1 {
		t.Fatal("want one item")
	}
	if _, ok := sel.Items[0].Expr.(*Star); !ok {
		t.Fatalf("want star, got %T", sel.Items[0].Expr)
	}
	if sel.Limit != -1 {
		t.Fatalf("default limit = %d", sel.Limit)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	u := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").(*Update)
	if u.Table != "t" || len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("update: %+v", u)
	}
	d := mustParse(t, "DELETE FROM t WHERE id IN (1, 2, 3)").(*Delete)
	if d.Table != "t" || d.Where == nil {
		t.Fatalf("delete: %+v", d)
	}
	d2 := mustParse(t, "DELETE FROM t").(*Delete)
	if d2.Where != nil {
		t.Fatal("unfiltered delete must have nil Where")
	}
}

func TestParseTxnAndSession(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Fatal("BEGIN")
	}
	if _, ok := mustParse(t, "COMMIT").(*Commit); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := mustParse(t, "ROLLBACK").(*Rollback); !ok {
		t.Fatal("ROLLBACK")
	}
	if _, ok := mustParse(t, "ABORT").(*Rollback); !ok {
		t.Fatal("ABORT")
	}
	ss := mustParse(t, "SET STALENESS = '100ms'").(*SetStaleness)
	if ss.Bound != 100*time.Millisecond || ss.Any {
		t.Fatalf("staleness: %+v", ss)
	}
	ss2 := mustParse(t, "SET STALENESS = any").(*SetStaleness)
	if !ss2.Any {
		t.Fatal("ANY staleness")
	}
	sh := mustParse(t, "SHOW TABLES").(*Show)
	if sh.What != "TABLES" {
		t.Fatalf("show: %+v", sh)
	}
}

func TestParseExplain(t *testing.T) {
	e := mustParse(t, "EXPLAIN SELECT * FROM t").(*Explain)
	if _, ok := e.Stmt.(*Select); !ok {
		t.Fatal("explain must wrap a select")
	}
	mustFail(t, "EXPLAIN INSERT INTO t VALUES (1)")
}

func TestParseExpressionPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a + b * c FROM t").(*Select)
	top := sel.Items[0].Expr.(*BinaryExpr)
	if top.Op != "+" {
		t.Fatalf("top op %q", top.Op)
	}
	if right := top.Right.(*BinaryExpr); right.Op != "*" {
		t.Fatalf("right op %q", right.Op)
	}

	sel2 := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*Select)
	or := sel2.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top where op %q", or.Op)
	}
	and := or.Right.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("right where op %q", and.Op)
	}
}

func TestParseComparisons(t *testing.T) {
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		sel := mustParse(t, "SELECT * FROM t WHERE a "+op+" 1").(*Select)
		if b := sel.Where.(*BinaryExpr); b.Op != op {
			t.Fatalf("op %q parsed as %q", op, b.Op)
		}
	}
	sel := mustParse(t, "SELECT * FROM t WHERE a IS NOT NULL AND b IS NULL").(*Select)
	and := sel.Where.(*BinaryExpr)
	if l := and.Left.(*IsNullExpr); !l.Neg {
		t.Fatal("IS NOT NULL")
	}
	if r := and.Right.(*IsNullExpr); r.Neg {
		t.Fatal("IS NULL")
	}
	between := mustParse(t, "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5").(*Select)
	if b := between.Where.(*BetweenExpr); !b.Neg {
		t.Fatal("NOT BETWEEN")
	}
	in := mustParse(t, "SELECT * FROM t WHERE a NOT IN (1, 2)").(*Select)
	if b := in.Where.(*InExpr); !b.Neg || len(b.List) != 2 {
		t.Fatal("NOT IN")
	}
	like := mustParse(t, "SELECT * FROM t WHERE name LIKE 'a%'").(*Select)
	if b := like.Where.(*BinaryExpr); b.Op != "LIKE" {
		t.Fatal("LIKE")
	}
}

func TestParseNegativeNumbersFold(t *testing.T) {
	sel := mustParse(t, "SELECT -5, -2.5 FROM t").(*Select)
	if v := sel.Items[0].Expr.(*Literal).Val; v != int64(-5) {
		t.Fatalf("got %v (%T)", v, v)
	}
	if v := sel.Items[1].Expr.(*Literal).Val; v != -2.5 {
		t.Fatalf("got %v (%T)", v, v)
	}
}

func TestParseFuncCalls(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*), COUNT(DISTINCT a), COALESCE(a, 0) FROM t").(*Select)
	c0 := sel.Items[0].Expr.(*FuncExpr)
	if c0.Name != "COUNT" {
		t.Fatal("COUNT(*)")
	}
	if _, ok := c0.Args[0].(*Star); !ok {
		t.Fatal("COUNT(*) arg")
	}
	c1 := sel.Items[1].Expr.(*FuncExpr)
	if !c1.Distinct {
		t.Fatal("DISTINCT flag")
	}
	c2 := sel.Items[2].Expr.(*FuncExpr)
	if c2.Name != "COALESCE" || len(c2.Args) != 2 {
		t.Fatal("COALESCE")
	}
	mustFail(t, "SELECT NOSUCHFN(a) FROM t")
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll("BEGIN; INSERT INTO t VALUES (1); COMMIT;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	if _, err := ParseAll("SELECT 1 FROM t SELECT"); err == nil {
		t.Fatal("missing semicolon must fail")
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	err := mustFail(t, "SELECT FROM t")
	if !strings.Contains(err.Error(), "1:") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	// String() output must re-parse to an equivalent statement.
	sources := []string{
		"SELECT a, b AS x FROM t WHERE a = 1 ORDER BY a DESC LIMIT 3",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
		"SELECT * FROM a x JOIN b y ON x.id = y.id WHERE x.v > 2",
		"INSERT INTO t (a, b) VALUES (1, 'two')",
		"UPDATE t SET a = 2 WHERE b = 'z'",
		"DELETE FROM t WHERE a BETWEEN 1 AND 9",
		"CREATE TABLE t (a BIGINT, b TEXT, PRIMARY KEY (a), INDEX i (a, b)) SHARD BY a",
	}
	for _, src := range sources {
		first := mustParse(t, src)
		second := mustParse(t, first.String())
		if first.String() != second.String() {
			t.Fatalf("round trip diverged:\n  src: %s\n  1st: %s\n  2nd: %s", src, first.String(), second.String())
		}
	}
}
