package gsql

import (
	"fmt"
	"testing"
)

// TestJoinLimitStopsFetching pins LIMIT pushdown through the pushed lookup
// join: because the join is fused into the outer scan's fragment, the
// cursor's row budget counts joined output rows, so a satisfied LIMIT
// stops the outer cursor's page fetching early — the gsql-level analog of
// the coordinator's TestPrefetchLimitStopsFetching. Without the pushdown
// (nested loop) the same query must still answer correctly, but the
// lookup-join run must touch a small fraction of storage.
func TestJoinLimitStopsFetching(t *testing.T) {
	s := openSQL(t)
	exec(t, s, `CREATE TABLE lord (
		w_id BIGINT, o_id BIGINT, c_id BIGINT, qty BIGINT,
		PRIMARY KEY (w_id, o_id)
	) SHARD BY w_id`)
	exec(t, s, `CREATE TABLE lcust (
		w_id BIGINT, c_id BIGINT, name TEXT,
		PRIMARY KEY (w_id, c_id)
	) SHARD BY w_id`)
	for w := int64(1); w <= 4; w++ {
		for c := int64(1); c <= 10; c++ {
			exec(t, s, fmt.Sprintf("INSERT INTO lcust VALUES (%d, %d, 'c%d')", w, c, c))
		}
		for o := int64(1); o <= 100; o++ {
			exec(t, s, fmt.Sprintf("INSERT INTO lord VALUES (%d, %d, %d, %d)", w, o, 1+o%10, o))
		}
	}

	// Every conjunct is consumed by the lookup key, so there is no CN
	// residual and the LIMIT becomes the cursors' row budget.
	res := exec(t, s, `SELECT o.o_id, c.name FROM lord o JOIN lcust c
		ON c.w_id = o.w_id AND c.c_id = o.c_id LIMIT 5`)
	if res.JoinStrategy != "lookup-pushdown" {
		t.Fatalf("ran %q, want lookup-pushdown", res.JoinStrategy)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(res.Rows))
	}
	// Full drain would read 400 outer + 400 inner rows. The pushed limit
	// caps each shard cursor at a handful of joined rows, so storage and
	// WAN traffic stay bounded by shards * small pages, not table size.
	if res.Scan.StorageRows >= 200 {
		t.Fatalf("LIMIT 5 lookup join read %d storage rows", res.Scan.StorageRows)
	}
	if res.Scan.WANRows >= 80 {
		t.Fatalf("LIMIT 5 lookup join shipped %d WAN rows", res.Scan.WANRows)
	}

	// The same query under the nested loop drains the outer scan lazily
	// too, but pays one lookup RPC per outer row until the limit fills —
	// results must agree in count either way.
	exec(t, s, "SET JOIN = NESTLOOP")
	nl := exec(t, s, `SELECT o.o_id, c.name FROM lord o JOIN lcust c
		ON c.w_id = o.w_id AND c.c_id = o.c_id LIMIT 5`)
	exec(t, s, "SET JOIN = AUTO")
	if len(nl.Rows) != 5 {
		t.Fatalf("nested-loop LIMIT 5 returned %d rows", len(nl.Rows))
	}
}
