package gsql

import "sort"

// topN retains the k rows that order first under an ORDER BY, replacing
// the drain-and-fully-sort path when a LIMIT bounds the result: admission
// is O(log k) per row against a max-heap of the current worst survivor, so
// `ORDER BY ... LIMIT k` over N rows costs O(N log k) comparisons and O(k)
// memory instead of materializing all N. Ties preserve arrival order
// (matching the stable sort it replaces): each row carries an arrival
// sequence number used as the final comparison key, so a late-arriving tie
// never displaces an earlier row.
type topN struct {
	orderBy []OrderItem
	k       int64

	// Parallel heap arrays, max-heap ordered: heap[0] is the worst
	// (last-ordering) survivor — the next candidate for displacement.
	rows [][]any
	keys [][]any
	seqs []int64

	nextSeq int64
}

func newTopN(orderBy []OrderItem, k int64) *topN {
	if k < 0 {
		k = 0
	}
	return &topN{orderBy: orderBy, k: k}
}

// cmp orders two entries by the ORDER BY keys, breaking exact ties by
// arrival sequence so the ordering is total and stable.
func (t *topN) cmp(ka []any, sa int64, kb []any, sb int64) (int, error) {
	for i, o := range t.orderBy {
		c, err := compareNullable(ka[i], kb[i])
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if o.Desc {
			return -c, nil
		}
		return c, nil
	}
	switch {
	case sa < sb:
		return -1, nil
	case sa > sb:
		return 1, nil
	}
	return 0, nil
}

// tryAdmitKeys evaluates the ORDER BY keys for the environment's current
// row and reports whether the row belongs in the top k: always while the
// heap is filling, and only when it orders strictly before the current
// worst survivor once full. Rejected rows are never projected, which is
// what makes the scan-side work per dropped row O(keys) only.
func (t *topN) tryAdmitKeys(env *rowEnv) ([]any, bool, error) {
	if t.k == 0 {
		return nil, false, nil
	}
	keys := make([]any, len(t.orderBy))
	for i, o := range t.orderBy {
		v, err := evalExpr(o.Expr, env)
		if err != nil {
			return nil, false, err
		}
		keys[i] = v
	}
	if int64(len(t.rows)) < t.k {
		return keys, true, nil
	}
	// The candidate's sequence is newer than every survivor's, so a key
	// tie orders it after the root: admission requires strictly-before.
	c, err := t.cmp(keys, t.nextSeq, t.keys[0], t.seqs[0])
	if err != nil {
		return nil, false, err
	}
	return keys, c < 0, nil
}

// add inserts an admitted row, displacing the worst survivor when full.
func (t *topN) add(row, keys []any) error {
	seq := t.nextSeq
	t.nextSeq++
	if int64(len(t.rows)) < t.k {
		t.rows = append(t.rows, row)
		t.keys = append(t.keys, keys)
		t.seqs = append(t.seqs, seq)
		return t.siftUp(len(t.rows) - 1)
	}
	t.rows[0], t.keys[0], t.seqs[0] = row, keys, seq
	return t.siftDown(0)
}

// after reports whether entry i orders after entry j (the max-heap
// property compares on it).
func (t *topN) after(i, j int) (bool, error) {
	c, err := t.cmp(t.keys[i], t.seqs[i], t.keys[j], t.seqs[j])
	return c > 0, err
}

func (t *topN) siftUp(i int) error {
	for i > 0 {
		parent := (i - 1) / 2
		a, err := t.after(i, parent)
		if err != nil {
			return err
		}
		if !a {
			return nil
		}
		t.swap(i, parent)
		i = parent
	}
	return nil
}

func (t *topN) siftDown(i int) error {
	n := len(t.rows)
	for {
		largest := i
		for _, child := range [2]int{2*i + 1, 2*i + 2} {
			if child >= n {
				continue
			}
			a, err := t.after(child, largest)
			if err != nil {
				return err
			}
			if a {
				largest = child
			}
		}
		if largest == i {
			return nil
		}
		t.swap(i, largest)
		i = largest
	}
}

func (t *topN) swap(i, j int) {
	t.rows[i], t.rows[j] = t.rows[j], t.rows[i]
	t.keys[i], t.keys[j] = t.keys[j], t.keys[i]
	t.seqs[i], t.seqs[j] = t.seqs[j], t.seqs[i]
}

// sorted returns the surviving rows in ORDER BY order (stable: key ties
// stay in arrival order thanks to the sequence tiebreak).
func (t *topN) sorted() ([][]any, error) {
	idx := make([]int, len(t.rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.Slice(idx, func(a, b int) bool {
		c, err := t.cmp(t.keys[idx[a]], t.seqs[idx[a]], t.keys[idx[b]], t.seqs[idx[b]])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([][]any, len(idx))
	for i, j := range idx {
		out[i] = t.rows[j]
	}
	return out, nil
}
