// Package globaldb is the public API of GlobalDB, a from-scratch Go
// reproduction of "GaussDB-Global: A Geographically Distributed Database
// System" (ICDE 2024).
//
// A DB is an in-process, geographically simulated cluster: regions
// connected by a modeled WAN, per-region computing nodes with synchronized
// clocks (or a centralized GTM), sharded multi-version storage with
// asynchronous redo replication, RCP-consistent replica reads, and online
// transitions between centralized and clock-based transaction management.
//
// Typical use:
//
//	db, _ := globaldb.Open(globaldb.ThreeCity())
//	defer db.Close()
//	sess := db.Connect("xian")
//	tx, _ := sess.Begin(ctx)
//	tx.Insert(ctx, "accounts", table.Row{int64(1), "alice", 100.0})
//	tx.Commit(ctx)
//
//	q, _ := sess.ReadOnly(ctx, globaldb.AnyStaleness, "accounts")
//	row, found, _ := q.Get(ctx, "accounts", []any{int64(1)})
//
// # Streaming scans
//
// Scans stream: ScanPKRows, ScanIndexRows and ScanTableRows (on both Tx and
// Query) return a Rows iterator that pulls fixed-size pages from storage on
// demand, so a consumer that stops early — a LIMIT, a search, a merge — only
// ships the pages it actually read across the simulated WAN. The page size
// is tuned per scan with ScanOpts.PageSize (DefaultScanPageSize rows per
// RPC when unset) and a ScanOpts.Range bounds the first key column after
// the equality prefix, pushing range predicates into storage:
//
//	rows, _ := q.ScanPKRows(ctx, "orders", []any{int64(1)},
//		globaldb.ScanOpts{Limit: 10, Range: &globaldb.ScanRange{Lo: int64(100)}})
//	defer rows.Close()
//	for rows.Next() {
//		use(rows.Row())
//	}
//	err := rows.Err()
//
// ScanTableRows merges per-shard cursors and yields rows in global
// primary-key order; the materializing ScanPK/ScanIndex/ScanTable helpers
// remain as thin wrappers that drain the corresponding iterator (ScanTable
// keeps its historical shard-by-shard order).
//
// # Latency hiding
//
// Scans hide the WAN behind themselves: each shard cursor runs a bounded
// page prefetcher (ScanOpts.Prefetch, double buffering by default) that
// issues the next page's RPC while the current batch is consumed, and a
// multi-shard scan opens every shard's cursor concurrently so all first
// pages travel in parallel. A cross-region merged scan therefore reaches
// its first batch in about one (maximum) round trip instead of one per
// shard, and a multi-page drain approaches max(compute, pipelined-RTT)
// instead of pages x RTT. Rows.ScanStats reports the effect per query:
// pages fetched, prefetch hits (pages ready before they were asked for)
// and cumulative WAN wait, alongside the per-layer row counters — which
// prefetching never changes, since it only reorders when the same pages
// are requested.
//
// # SQL access
//
// Most clients should not use this typed API directly: the globaldb/gsql
// package parses, plans and executes SQL over it (with parameterized
// prepared statements and a DDL-aware plan cache keyed on
// DB.CatalogVersion), and the globaldb/driver package exposes that SQL
// layer through database/sql, streaming result rows off the paged scan
// pipeline:
//
//	sqldb := driver.Open(db, driver.Config{Region: "xian"})
//	st, _ := sqldb.PrepareContext(ctx, "SELECT v FROM kv WHERE k = ?")
//	rows, _ := st.QueryContext(ctx, int64(42))
package globaldb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"globaldb/internal/cluster"
	"globaldb/internal/coordinator"
	"globaldb/internal/datanode"
	"globaldb/internal/keys"
	"globaldb/internal/placement"
	"globaldb/internal/table"
	"globaldb/internal/ts"
)

// Re-exported configuration types and helpers.
type (
	// Config describes a cluster deployment (regions, links, shards,
	// replication, transaction management mode).
	Config = cluster.Config
	// LinkSpec declares a WAN link between two regions.
	LinkSpec = cluster.LinkSpec
	// Schema describes a table.
	Schema = table.Schema
	// Column describes a table column.
	Column = table.Column
	// Index describes a secondary index.
	Index = table.Index
	// Row is a tuple of column values.
	Row = table.Row
)

// Column kinds, re-exported.
const (
	Int64   = table.Int64
	Float64 = table.Float64
	String  = table.String
	Bytes   = table.Bytes
	Bool    = table.Bool
)

// AnyStaleness disables the freshness bound on read-only queries.
const AnyStaleness = coordinator.AnyStaleness

// ThreeCity returns the paper's three-city topology (Xi'an, Langzhong,
// Dongguan; 25/35/55 ms RTTs).
func ThreeCity() Config { return cluster.ThreeCity() }

// OneRegion returns the paper's single-datacenter topology with injected
// inter-node latency.
func OneRegion(injectedRTT time.Duration) Config { return cluster.OneRegion(injectedRTT) }

// Errors.
var (
	// ErrNotFound is returned by lookups that match no row.
	ErrNotFound = errors.New("globaldb: row not found")
)

// DB is an open cluster.
type DB struct {
	c *cluster.Cluster
}

// Open builds and starts a cluster.
func Open(cfg Config) (*DB, error) {
	c, err := cluster.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{c: c}, nil
}

// Close stops the cluster's background activity.
func (db *DB) Close() { db.c.Close() }

// Cluster exposes the underlying cluster for benchmarks, failure injection
// and observability.
func (db *DB) Cluster() *cluster.Cluster { return db.c }

// CreateTable registers a schema cluster-wide, stamping the DDL with a
// commit timestamp that read-on-replica queries gate on.
func (db *DB) CreateTable(ctx context.Context, s *Schema) error {
	return db.c.CreateTable(ctx, s)
}

// DropTable removes a table.
func (db *DB) DropTable(ctx context.Context, name string) error {
	return db.c.DropTable(ctx, name)
}

// TransitionToGClock migrates the live cluster to decentralized clock-based
// transaction management (zero downtime).
func (db *DB) TransitionToGClock(ctx context.Context) error {
	return db.c.TransitionToGClock(ctx)
}

// TransitionToGTM migrates back to centralized management, e.g. after a
// clock failure.
func (db *DB) TransitionToGTM(ctx context.Context) error {
	return db.c.TransitionToGTM(ctx)
}

// Mode reports the current transaction management mode.
func (db *DB) Mode() ts.Mode { return db.c.Mode() }

// Placement types, re-exported for the geographic load-balancing advisor
// (the paper's future-work "transparent load balancing based on
// geographical access patterns").
type (
	// PlacementMove is one recommended primary relocation.
	PlacementMove = placement.Move
	// PlacementConfig tunes the advisor.
	PlacementConfig = placement.Config
)

// DefaultPlacementConfig returns conservative advisor settings.
func DefaultPlacementConfig() PlacementConfig { return placement.DefaultConfig() }

// AdvisePlacement recommends moving shard primaries toward the regions
// that dominate their traffic, based on access counts accumulated since
// the cluster opened (or since ResetPlacementWindow).
func (db *DB) AdvisePlacement(cfg PlacementConfig) []PlacementMove {
	return db.c.AdvisePlacement(cfg)
}

// ResetPlacementWindow clears the advisor's access counts, starting a new
// observation window.
func (db *DB) ResetPlacementWindow() { db.c.Placement.Reset() }

// MovePrimary relocates a shard's primary into the target region by
// catching up and promoting that region's replica. In-flight transactions
// on the shard may abort and retry, as during failover.
func (db *DB) MovePrimary(ctx context.Context, shard int, region string) error {
	return db.c.MovePrimary(ctx, shard, region)
}

// Regions lists the cluster's regions.
func (db *DB) Regions() []string { return db.c.Regions() }

// Connect returns a session homed at the region's computing node.
func (db *DB) Connect(region string) (*Session, error) {
	cn := db.c.CN(region)
	if cn == nil {
		return nil, fmt.Errorf("globaldb: no CN in region %q", region)
	}
	return &Session{db: db, cn: cn}, nil
}

// Session is a client connection to one CN.
type Session struct {
	db *DB
	cn *coordinator.CN
}

// Region returns the session's home region.
func (s *Session) Region() string { return s.cn.Region() }

// CN exposes the session's computing node (stats, tests).
func (s *Session) CN() *coordinator.CN { return s.cn }

// Begin starts a read-write transaction.
func (s *Session) Begin(ctx context.Context) (*Tx, error) {
	t, err := s.cn.Begin(ctx)
	if err != nil {
		return nil, err
	}
	return &Tx{sess: s, txn: t}, nil
}

// ReadOnly starts a read-only query with a staleness bound; tables names
// the relations the query will touch (for the DDL visibility gate).
func (s *Session) ReadOnly(ctx context.Context, bound time.Duration, tables ...string) (*Query, error) {
	ids := make([]uint64, 0, len(tables))
	for _, name := range tables {
		sch, err := s.db.c.Catalog.Get(name)
		if err != nil {
			return nil, err
		}
		ids = append(ids, sch.ID)
	}
	ro, err := s.cn.ReadOnly(ctx, bound, ids...)
	if err != nil {
		return nil, err
	}
	return &Query{sess: s, ro: ro}, nil
}

// schemaOf resolves a table name.
func (s *Session) schemaOf(name string) (*Schema, error) {
	return s.db.c.Catalog.Get(name)
}

// shardOfRow picks the row's shard from its distribution column.
func (s *Session) shardOfRow(sch *Schema, r Row) int {
	return s.db.c.ShardOf(r[sch.ShardBy])
}

// Tx is a read-write transaction.
type Tx struct {
	sess *Session
	txn  *coordinator.Txn
}

// Snapshot returns the transaction's snapshot timestamp.
func (tx *Tx) Snapshot() ts.Timestamp { return tx.txn.Snapshot() }

// CommitTS returns the transaction's commit timestamp (zero before a
// successful Commit). Replica reads observe the transaction once the RCP
// reaches this timestamp.
func (tx *Tx) CommitTS() ts.Timestamp { return tx.txn.CommitTS() }

// Insert writes a full row (and its index entries). It is an upsert at the
// storage level; primary-key uniqueness violations surface as write-write
// conflicts when rows race.
func (tx *Tx) Insert(ctx context.Context, tableName string, r Row) error {
	if err := tx.writeRow(ctx, tableName, r); err != nil {
		return err
	}
	// Advisory planner statistic; drift (aborts, re-inserted keys) is
	// acceptable — see Catalog.BumpRowEstimate.
	if sch, err := tx.sess.schemaOf(tableName); err == nil {
		tx.sess.db.c.Catalog.BumpRowEstimate(sch.ID, 1)
	}
	return nil
}

// Update rewrites a full row. Indexed column values must not change (index
// entries are re-written, not migrated), matching how the TPC-C and
// Sysbench schemas use indexes.
func (tx *Tx) Update(ctx context.Context, tableName string, r Row) error {
	return tx.writeRow(ctx, tableName, r)
}

func (tx *Tx) writeRow(ctx context.Context, tableName string, r Row) error {
	sch, err := tx.sess.schemaOf(tableName)
	if err != nil {
		return err
	}
	pk, err := sch.PrimaryKey(r)
	if err != nil {
		return err
	}
	val, err := sch.EncodeRow(r)
	if err != nil {
		return err
	}
	ops := []opKV{{key: pk, value: val}}
	for _, ix := range sch.Indexes {
		ik, err := sch.IndexKey(ix, r)
		if err != nil {
			return err
		}
		ops = append(ops, opKV{key: ik, value: pk})
	}
	if sch.SyncReplicated {
		tx.txn.RequireSyncCommit()
	}
	return tx.applyOps(ctx, tx.sess.shardOfRow(sch, r), ops)
}

// Delete removes the row with the given primary key values.
func (tx *Tx) Delete(ctx context.Context, tableName string, pkVals []any) error {
	sch, err := tx.sess.schemaOf(tableName)
	if err != nil {
		return err
	}
	r, found, err := tx.Get(ctx, tableName, pkVals)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %s %v", ErrNotFound, tableName, pkVals)
	}
	pk, err := sch.PrimaryKey(r)
	if err != nil {
		return err
	}
	ops := []opKV{{key: pk, del: true}}
	for _, ix := range sch.Indexes {
		ik, err := sch.IndexKey(ix, r)
		if err != nil {
			return err
		}
		ops = append(ops, opKV{key: ik, del: true})
	}
	if sch.SyncReplicated {
		tx.txn.RequireSyncCommit()
	}
	if err := tx.applyOps(ctx, tx.sess.shardOfRow(sch, r), ops); err != nil {
		return err
	}
	tx.sess.db.c.Catalog.BumpRowEstimate(sch.ID, -1)
	return nil
}

type opKV struct {
	key, value []byte
	del        bool
}

func (tx *Tx) applyOps(ctx context.Context, shard int, ops []opKV) error {
	wops := make([]datanode.WriteOp, 0, len(ops))
	for _, op := range ops {
		wops = append(wops, datanode.WriteOp{Delete: op.del, Key: op.key, Value: op.value})
	}
	return tx.txn.WriteBatch(ctx, shard, wops)
}

// Get fetches one row by primary key from the shard primary at the
// transaction's snapshot, observing the transaction's own writes.
func (tx *Tx) Get(ctx context.Context, tableName string, pkVals []any) (Row, bool, error) {
	sch, err := tx.sess.schemaOf(tableName)
	if err != nil {
		return nil, false, err
	}
	key, err := sch.PrimaryKeyFromValues(pkVals)
	if err != nil {
		return nil, false, err
	}
	shard := tx.sess.db.c.ShardOf(pkVals[pkPos(sch)])
	v, found, err := tx.txn.Get(ctx, shard, key)
	if err != nil || !found {
		return nil, false, err
	}
	r, err := sch.DecodeRow(v)
	return r, err == nil, err
}

// pkPos returns the position within pkVals of the distribution column.
// Tables distribute by a PK column (validated at creation time for this
// API); for TPC-C-style schemas that is the leading warehouse ID.
func pkPos(sch *Schema) int {
	for i, p := range sch.PK {
		if p == sch.ShardBy {
			return i
		}
	}
	return 0
}

// ScanPK scans rows whose primary key starts with pkPrefix, in key order.
// The prefix must include the distribution column so the scan is
// single-shard (GaussDB's co-located scan). It drains a streaming
// ScanPKRows iterator; limit <= 0 means no limit.
func (tx *Tx) ScanPK(ctx context.Context, tableName string, pkPrefix []any, limit int) ([]Row, error) {
	r, err := tx.ScanPKRows(ctx, tableName, pkPrefix, ScanOpts{Limit: limit})
	if err != nil {
		return nil, err
	}
	return drainRows(r)
}

// ScanIndex scans a secondary index by a prefix of its columns and returns
// the matching rows (via primary-key lookups on the same shard). It drains
// a streaming ScanIndexRows iterator.
func (tx *Tx) ScanIndex(ctx context.Context, tableName, indexName string, prefix []any, limit int) ([]Row, error) {
	r, err := tx.ScanIndexRows(ctx, tableName, indexName, prefix, ScanOpts{Limit: limit})
	if err != nil {
		return nil, err
	}
	return drainRows(r)
}

// ScanTable scans every row of a table across all shards, in shard order
// then key order within each shard. It is the access path of last resort
// (an unsharded full scan); limit <= 0 means no limit.
func (tx *Tx) ScanTable(ctx context.Context, tableName string, limit int) ([]Row, error) {
	r, err := tx.tableRows(ctx, tableName, ScanOpts{Limit: limit}, false)
	if err != nil {
		return nil, err
	}
	return drainRows(r)
}

// Commit finishes the transaction (single-shard fast path or 2PC), waiting
// out the commit wait before returning.
func (tx *Tx) Commit(ctx context.Context) error { return tx.txn.Commit(ctx) }

// Abort rolls the transaction back.
func (tx *Tx) Abort(ctx context.Context) error { return tx.txn.Abort(ctx) }

// Query is a read-only query context (replica reads at the RCP when the
// bound and DDL gate allow).
type Query struct {
	sess *Session
	ro   *coordinator.ROTxn
}

// OnReplicas reports whether the query is served from replicas.
func (q *Query) OnReplicas() bool { return q.ro.OnReplicas() }

// Snapshot returns the query's snapshot timestamp.
func (q *Query) Snapshot() ts.Timestamp { return q.ro.Snapshot() }

// Get fetches one row by primary key.
func (q *Query) Get(ctx context.Context, tableName string, pkVals []any) (Row, bool, error) {
	sch, err := q.sess.schemaOf(tableName)
	if err != nil {
		return nil, false, err
	}
	key, err := sch.PrimaryKeyFromValues(pkVals)
	if err != nil {
		return nil, false, err
	}
	shard := q.sess.db.c.ShardOf(pkVals[pkPos(sch)])
	v, found, err := q.ro.Get(ctx, shard, key)
	if err != nil || !found {
		return nil, false, err
	}
	r, err := sch.DecodeRow(v)
	return r, err == nil, err
}

// ScanPK scans rows by primary-key prefix, draining a streaming
// ScanPKRows iterator.
func (q *Query) ScanPK(ctx context.Context, tableName string, pkPrefix []any, limit int) ([]Row, error) {
	r, err := q.ScanPKRows(ctx, tableName, pkPrefix, ScanOpts{Limit: limit})
	if err != nil {
		return nil, err
	}
	return drainRows(r)
}

// ScanIndex scans a secondary index by prefix and resolves rows, draining a
// streaming ScanIndexRows iterator.
func (q *Query) ScanIndex(ctx context.Context, tableName, indexName string, prefix []any, limit int) ([]Row, error) {
	r, err := q.ScanIndexRows(ctx, tableName, indexName, prefix, ScanOpts{Limit: limit})
	if err != nil {
		return nil, err
	}
	return drainRows(r)
}

// ScanTable scans every row of a table across all shards at the query's
// snapshot, in shard order then key order within each shard; limit <= 0
// means no limit.
func (q *Query) ScanTable(ctx context.Context, tableName string, limit int) ([]Row, error) {
	r, err := q.tableRows(ctx, tableName, ScanOpts{Limit: limit}, false)
	if err != nil {
		return nil, err
	}
	return drainRows(r)
}

// Tables lists the names of all tables in the catalog.
func (db *DB) Tables() []string {
	schemas := db.c.Catalog.Tables()
	names := make([]string, 0, len(schemas))
	for _, s := range schemas {
		names = append(names, s.Name)
	}
	return names
}

// Schema returns the schema of the named table.
func (db *DB) Schema(name string) (*Schema, error) { return db.c.Catalog.Get(name) }

// RowEstimate returns a table's approximate row count — an advisory planner
// statistic maintained by committed inserts and deletes (zero if unknown).
func (db *DB) RowEstimate(tableName string) int64 {
	sch, err := db.c.Catalog.Get(tableName)
	if err != nil {
		return 0
	}
	return db.c.Catalog.RowEstimate(sch.ID)
}

// CatalogVersion returns a monotonically increasing value that changes with
// every DDL commit (the catalog's maximum DDL timestamp). Plan caches key
// their validity on it: a cached plan built at one version must be
// discarded once the version moves, since a CREATE/DROP may have changed
// any schema the plan resolved.
func (db *DB) CatalogVersion() uint64 { return uint64(db.c.Catalog.MaxDDLTS()) }

// Shared helpers.

func indexOf(s *Session, tableName, indexName string) (*Schema, table.Index, error) {
	sch, err := s.schemaOf(tableName)
	if err != nil {
		return nil, table.Index{}, err
	}
	for _, ix := range sch.Indexes {
		if ix.Name == indexName {
			return sch, ix, nil
		}
	}
	return nil, table.Index{}, fmt.Errorf("globaldb: table %s has no index %q", tableName, indexName)
}

// pkScanBounds computes the key range and shard for a PK-prefix scan. The
// prefix must cover the distribution column.
func pkScanBounds(db *DB, sch *Schema, pkPrefix []any) (start, end []byte, shard int, err error) {
	if len(pkPrefix) == 0 || len(pkPrefix) > len(sch.PK) {
		return nil, nil, 0, fmt.Errorf("globaldb: PK prefix of %d values for %d PK columns", len(pkPrefix), len(sch.PK))
	}
	pos := pkPos(sch)
	if pos >= len(pkPrefix) {
		return nil, nil, 0, fmt.Errorf("globaldb: PK prefix must include the distribution column %s", sch.Columns[sch.ShardBy].Name)
	}
	start, err = sch.PrimaryKeyPrefix(pkPrefix)
	if err != nil {
		return nil, nil, 0, err
	}
	return start, keys.PrefixEnd(start), db.c.ShardOf(pkPrefix[pos]), nil
}

func indexScanBounds(db *DB, sch *Schema, ix table.Index, prefix []any) (start, end []byte, shard int, err error) {
	start, err = sch.IndexPrefix(ix, prefix)
	if err != nil {
		return nil, nil, 0, err
	}
	// The distribution column must be among the prefixed index columns so
	// the scan is single-shard.
	shardVal, ok := distValueFromIndexPrefix(sch, ix, prefix)
	if !ok {
		return nil, nil, 0, fmt.Errorf("globaldb: index scan on %s.%s must prefix the distribution column", sch.Name, ix.Name)
	}
	return start, keys.PrefixEnd(start), db.c.ShardOf(shardVal), nil
}

func distValueFromIndexPrefix(sch *Schema, ix table.Index, prefix []any) (any, bool) {
	for i, col := range ix.Cols {
		if col == sch.ShardBy && i < len(prefix) {
			return prefix[i], true
		}
	}
	return nil, false
}
