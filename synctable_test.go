package globaldb

import (
	"context"
	"testing"
	"time"
)

// TestSyncReplicatedTable exercises the paper's future-work feature: a
// synchronously replicated table co-existing with asynchronous ones. Writes
// to the sync table wait for replica acknowledgement at commit, so the data
// is immediately fresh on replicas; async tables keep their fast commits.
func TestSyncReplicatedTable(t *testing.T) {
	cfg := ThreeCity()
	cfg.TimeScale = 0.05
	cfg.Shards = 3
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	mkSchema := func(name string, sync bool) *Schema {
		return &Schema{
			Name: name,
			Columns: []Column{
				{Name: "id", Kind: Int64},
				{Name: "v", Kind: String},
			},
			PK:             []int{0},
			SyncReplicated: sync,
		}
	}
	if err := db.CreateTable(ctx, mkSchema("config", true)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(ctx, mkSchema("events", false)); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")

	// Sync-table write: after commit returns, every committed record is on
	// a quorum of that shard's replicas.
	tx, _ := sess.Begin(ctx)
	if err := tx.Insert(ctx, "config", Row{int64(1), "flag=on"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	shard := db.Cluster().ShardOf(int64(1))
	p := db.Cluster().Primaries()[shard]
	acked := false
	for _, sh := range p.Repl().Shippers() {
		if sh.AckedLSN() >= p.Log().LastLSN()-1 { // heartbeats may append behind us
			acked = true
		}
	}
	if !acked {
		t.Fatal("sync-table commit returned before any replica acked")
	}
	// The row is immediately readable on that shard's replicas at its
	// commit timestamp.
	for _, rep := range db.Cluster().Replicas(shard) {
		if rep.Applier().MaxCommitTS() < tx.Snapshot() {
			continue // quorum is 1: the other replica may lag briefly
		}
		v, found, err := rep.Applier().Store().Get(ctx, mustPK(t, db, "config", int64(1)), tx.Snapshot()+1e9, 0)
		if err != nil || !found {
			t.Fatalf("sync table row missing on caught-up replica: %v %v", found, err)
		}
		_ = v
	}

	// Async-table commits do not wait: they are much faster than the WAN
	// round trip the sync table pays.
	syncD := timeCommit(t, ctx, sess, "config", int64(10))
	asyncD := timeCommit(t, ctx, sess, "events", int64(10))
	if asyncD >= syncD {
		t.Fatalf("async commit (%v) must be faster than sync commit (%v)", asyncD, syncD)
	}

	// A transaction touching BOTH tables waits (the sync requirement is
	// transaction-wide once a sync table is written).
	mixed, _ := sess.Begin(ctx)
	if err := mixed.Insert(ctx, "events", Row{int64(20), "e"}); err != nil {
		t.Fatal(err)
	}
	if err := mixed.Insert(ctx, "config", Row{int64(20), "c"}); err != nil {
		t.Fatal(err)
	}
	if err := mixed.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func timeCommit(t *testing.T, ctx context.Context, sess *Session, tbl string, id int64) time.Duration {
	t.Helper()
	tx, err := sess.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(ctx, tbl, Row{id, "x"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

func mustPK(t *testing.T, db *DB, tbl string, id int64) []byte {
	t.Helper()
	sch, err := db.Cluster().Catalog.Get(tbl)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sch.PrimaryKeyFromValues([]any{id})
	if err != nil {
		t.Fatal(err)
	}
	return k
}
