module globaldb

go 1.22
