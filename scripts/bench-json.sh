#!/bin/sh
# bench-json.sh — distill `go test -bench -benchmem` output into a small
# JSON document for the CI artifact: each matching benchmark's wall time,
# allocation count, and custom per-op metrics.
#
#   usage: bench-json.sh <bench-output.txt> [out.json] [name-filter]
#
# name-filter is a substring the benchmark name must contain (default:
# Scan). Input lines look like:
#   BenchmarkScanPushdownLimit-8  1  204958 ns/op  51234 B/op  412 allocs/op  64 storage-rows/op  10 wan-rows/op
#   BenchmarkTPCCNewOrderPayment  1  613948 ns/op  36322 tpmC  0.71 fsyncs/commit  ...
# Output maps benchmark name -> {"ns/op": ..., "allocs/op": ..., "tpmC": ...}.
set -eu

in=${1:?usage: bench-json.sh <bench-output.txt> [out.json] [name-filter]}
out=${2:-BENCH_scan.json}
filter=${3:-Scan}

awk -v filter="$filter" '
$1 ~ /^Benchmark/ && index($1, filter) && $2 ~ /^[0-9]+$/ {
    line = ""
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op" || unit == "allocs/op" || unit ~ /rows\/op$/ ||
            unit == "tpmC" || unit == "fsyncs/commit" || unit ~ /-ms$/) {
            if (line != "") line = line ", "
            line = line "\"" unit "\": " $i
        }
    }
    if (line == "") next
    if (count++) printf ",\n"
    printf "  \"%s\": {%s}", $1, line
}
END { if (count) printf "\n" }
' "$in" > "$out.body"

{
    printf "{\n"
    cat "$out.body"
    printf "}\n"
} > "$out"
rm -f "$out.body"
