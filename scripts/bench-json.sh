#!/bin/sh
# bench-json.sh — distill `go test -bench -benchmem` output into a small
# JSON document for the CI artifact: every Scan benchmark's wall time,
# allocation count, and per-layer row metrics.
#
#   usage: bench-json.sh <bench-output.txt> [out.json]
#
# Input lines look like:
#   BenchmarkScanPushdownLimit-8  1  204958 ns/op  51234 B/op  412 allocs/op  64 storage-rows/op  10 wan-rows/op
# Output maps benchmark name -> {"ns/op": ..., "allocs/op": ..., "storage-rows/op": ..., ...}.
set -eu

in=${1:?usage: bench-json.sh <bench-output.txt> [out.json]}
out=${2:-BENCH_scan.json}

awk '
$1 ~ /^Benchmark/ && $1 ~ /Scan/ && $2 ~ /^[0-9]+$/ {
    line = ""
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        if (unit == "ns/op" || unit == "allocs/op" || unit ~ /rows\/op$/) {
            if (line != "") line = line ", "
            line = line "\"" unit "\": " $i
        }
    }
    if (line == "") next
    if (count++) printf ",\n"
    printf "  \"%s\": {%s}", $1, line
}
END { if (count) printf "\n" }
' "$in" > "$out.body"

{
    printf "{\n"
    cat "$out.body"
    printf "}\n"
} > "$out"
rm -f "$out.body"
