package globaldb

import (
	"context"
	"fmt"
	"time"

	"globaldb/gsql/fragment"
	"globaldb/internal/coordinator"
	"globaldb/internal/datanode"
	"globaldb/internal/keys"
	"globaldb/internal/stats"
	"globaldb/internal/storage/mvcc"
	"globaldb/internal/table"
)

// DefaultScanPageSize is the rows-per-RPC page size streaming scans use
// when ScanOpts.PageSize is unset.
const DefaultScanPageSize = datanode.DefaultScanPageSize

// ScanRange bounds the first key column after a scan's equality prefix: for
// a PK scan over prefix (w_id), the range applies to the next PK column;
// for an index scan, to the next index column; for a table scan, to the
// leading PK column. A nil Lo or Hi leaves that side unbounded. Values must
// match the column's kind (the same values Get and ScanPK accept).
type ScanRange struct {
	// Lo is the lower bound (inclusive unless LoExcl).
	Lo any
	// Hi is the upper bound (inclusive unless HiExcl).
	Hi any
	// LoExcl makes Lo exclusive.
	LoExcl bool
	// HiExcl makes Hi exclusive.
	HiExcl bool
}

// ScanOpts tunes a streaming scan.
type ScanOpts struct {
	// Limit caps the total rows yielded; <= 0 means unlimited. With a
	// Pushdown fragment attached, the limit budgets qualifying rows — the
	// rows that survive the data-node-side filter.
	Limit int
	// PageSize is the rows fetched by the first storage RPC; <= 0 uses
	// DefaultScanPageSize. Smaller first pages cut time-to-first-row and
	// wasted prefetch when a LIMIT stops the scan early; follow-up pages
	// grow adaptively toward DefaultScanPageSize to amortize WAN round
	// trips on deep scans.
	PageSize int
	// Prefetch is the pages-ahead window of the background prefetcher each
	// shard cursor runs: 0 uses the default (double buffering — the next
	// page's WAN round trip overlaps consumption of the current one, and a
	// multi-shard scan fetches all first pages in parallel), a positive
	// value keeps that many unconsumed pages fetched or in flight, and a
	// negative value disables prefetching entirely (pages are fetched
	// synchronously on demand — no RPC is ever issued for rows the
	// consumer did not ask for, at the price of one idle WAN round trip
	// between pages). The window bounds early-termination waste: a
	// consumer that stops mid-scan has paid for at most Prefetch extra
	// pages per shard.
	Prefetch int
	// Range optionally bounds the first key column after the equality
	// prefix, narrowing the scanned key range inside storage.
	Range *ScanRange
	// Pushdown, when non-nil, is an execution fragment the data nodes
	// evaluate next to the data: rows are filtered, projected, or folded
	// into per-group partial aggregates before crossing the WAN. With
	// aggregates, the Rows yield one row per group shaped
	// [group values..., fragment.AggState per slot...] with per-shard
	// partial states already merged. Not supported on index scans (index
	// entries carry primary keys, not rows).
	Pushdown *fragment.Fragment
}

// ScanStats reports one scan's per-layer row counts: rows read from MVCC
// storage by data nodes, rows those nodes dropped locally (pushed filter
// or partial aggregation), and rows that crossed the simulated WAN. The
// StorageRows-to-WANRows gap is the pushdown win, observable per query at
// runtime rather than only in benchmarks.
type ScanStats struct {
	StorageRows    int64
	DNFilteredRows int64
	WANRows        int64
	// LookupRows counts inner-table rows data nodes read while executing
	// pushed lookup joins — the join's inner side served next to the data.
	// Also included in StorageRows.
	LookupRows int64
	// PagesFetched counts scan-page RPCs; PrefetchHits counts the pages
	// that were already fetched (or in flight and complete) when the
	// consumer asked for them — WAN round trips fully hidden behind
	// consumption. WANWait is the cumulative wall time the consumer spent
	// blocked waiting on the network; with an effective prefetch window it
	// approaches one round trip per shard instead of one per page.
	PagesFetched int64
	PrefetchHits int64
	WANWait      time.Duration
}

// Add returns the element-wise sum of two stats.
func (s ScanStats) Add(o ScanStats) ScanStats {
	return ScanStats{
		StorageRows:    s.StorageRows + o.StorageRows,
		DNFilteredRows: s.DNFilteredRows + o.DNFilteredRows,
		WANRows:        s.WANRows + o.WANRows,
		LookupRows:     s.LookupRows + o.LookupRows,
		PagesFetched:   s.PagesFetched + o.PagesFetched,
		PrefetchHits:   s.PrefetchHits + o.PrefetchHits,
		WANWait:        s.WANWait + o.WANWait,
	}
}

func toScanStats(s stats.ScanSnapshot) ScanStats {
	return ScanStats{StorageRows: s.StorageRows, DNFilteredRows: s.DNFilteredRows, WANRows: s.WANRows,
		LookupRows: s.LookupRows, PagesFetched: s.PagesFetched, PrefetchHits: s.PrefetchHits, WANWait: s.WANWait}
}

// Rows is a streaming scan result. It is batch-native inside: the cursor
// below it yields whole data-node pages, and each page is decoded in one
// pass into a fresh backing slab (one slab per batch instead of one
// allocation per row). NextBatch/Batch expose the batches to batch-aware
// consumers like the SQL operator pipeline; Next/Row remain the
// row-at-a-time edge for everything else. A Rows must be closed (Close is
// idempotent, and draining to exhaustion also suffices).
//
// Scans prefetch: while one batch is being decoded or consumed, the next
// page's RPC is already in flight on a per-shard prefetch goroutine (see
// ScanOpts.Prefetch). That concurrency is safe by construction of the
// batch lifetime rules: a page shipped by a data node never aliases a
// buffer the node reuses for later requests (responses slice immutable
// MVCC store memory or a per-request encode buffer), and this layer
// decodes every page into a fresh slab, so a prefetched page landing
// mid-decode cannot touch memory any earlier batch — or any retained Row —
// still references. Close cancels in-flight page RPCs and joins the
// prefetch goroutines before returning.
type Rows struct {
	ctx       context.Context
	sch       *table.Schema
	cur       coordinator.BatchCursor
	resolve   func(ctx context.Context, kv mvcc.KV) (Row, bool, error)
	projFrag  *fragment.Fragment      // batch-decode of projected rows
	narrow    []table.Kind            // projFrag.ProjectedKinds()
	joined    *fragment.JoinedDecoder // batch-decode of lookup-joined rows
	ctrs      *stats.ScanCounters
	remaining int // rows still to yield; < 0 means unlimited
	batch     []Row
	bpos      int
	bview     []Row
	row       Row
	err       error
	closed    bool
}

func newRows(ctx context.Context, sch *table.Schema, cur coordinator.BatchCursor, limit int, st *scanSetup) *Rows {
	remaining := -1
	if limit > 0 {
		remaining = limit
	}
	return &Rows{ctx: ctx, sch: sch, cur: cur, resolve: st.resolve,
		projFrag: st.projFrag, narrow: st.narrow, joined: st.joined, ctrs: st.ctrs, remaining: remaining}
}

// ScanStats reports this scan's per-layer row counts so far: storage rows
// examined by data nodes, rows dropped node-side, and rows shipped over
// the WAN. Valid at any point during iteration; final once the scan is
// drained or closed.
func (r *Rows) ScanStats() ScanStats { return toScanStats(r.ctrs.Snapshot()) }

// fillBatch decodes the cursor's next non-empty batch into r.batch. Rows
// are backed by one fresh slab per batch, never reused, so a caller may
// retain any yielded Row indefinitely.
func (r *Rows) fillBatch() bool {
	if r.closed || r.err != nil || r.remaining == 0 {
		return false
	}
	for {
		if !r.cur.NextBatch(r.ctx) {
			r.err = r.cur.Err()
			return false
		}
		kvs := r.cur.Batch()
		if r.remaining > 0 && len(kvs) > r.remaining {
			kvs = kvs[:r.remaining]
		}
		if len(kvs) == 0 {
			continue
		}
		n := len(kvs)
		rows := make([]Row, 0, n)
		switch {
		case r.resolve != nil:
			for i := range kvs {
				row, ok, err := r.resolve(r.ctx, kvs[i])
				if err != nil {
					r.err = err
					return false
				}
				if !ok {
					continue // row deleted with a stale index entry in-flight
				}
				rows = append(rows, row)
			}
		case r.joined != nil:
			// Lookup-joined rows: each value decodes to one combined row of
			// full outer width followed by full inner width.
			w := r.joined.Width()
			slab := make([]any, 0, w*n)
			for i := range kvs {
				var err error
				slab, err = r.joined.DecodeAppend(kvs[i].Value, slab)
				if err != nil {
					r.err = err
					return false
				}
			}
			for i := 0; i < n; i++ {
				rows = append(rows, Row(slab[i*w:(i+1)*w:(i+1)*w]))
			}
		case r.projFrag != nil:
			w := len(r.projFrag.Kinds)
			slab := make([]any, 0, w*n)
			for i := range kvs {
				var err error
				slab, err = r.projFrag.DecodeProjectedAppend(r.narrow, kvs[i].Value, slab)
				if err != nil {
					r.err = err
					return false
				}
			}
			for i := 0; i < n; i++ {
				rows = append(rows, Row(slab[i*w:(i+1)*w:(i+1)*w]))
			}
		default:
			w := len(r.sch.Columns)
			slab := make([]any, 0, w*n)
			for i := range kvs {
				var err error
				slab, err = r.sch.DecodeRowAppend(kvs[i].Value, slab)
				if err != nil {
					r.err = err
					return false
				}
			}
			for i := 0; i < n; i++ {
				rows = append(rows, Row(slab[i*w:(i+1)*w:(i+1)*w]))
			}
		}
		if r.remaining > 0 {
			r.remaining -= len(rows)
		}
		if len(rows) == 0 {
			continue
		}
		r.batch, r.bpos = rows, 0
		return true
	}
}

// Next advances to the next row, returning false at the end of the scan or
// on error (check Err afterwards).
func (r *Rows) Next() bool {
	if r.bpos >= len(r.batch) && !r.fillBatch() {
		return false
	}
	r.row = r.batch[r.bpos]
	r.bpos++
	return true
}

// NextBatch advances to the next batch of rows — the unconsumed remainder
// of the current batch, or the next decoded page — returning false at the
// end of the scan or on error. Batch-aware consumers use this instead of
// Next to move whole pages through the pipeline.
func (r *Rows) NextBatch() bool {
	if r.bpos >= len(r.batch) && !r.fillBatch() {
		return false
	}
	r.bview = r.batch[r.bpos:]
	r.bpos = len(r.batch)
	return true
}

// Batch returns the current batch of rows (valid after a true NextBatch,
// until the following NextBatch). The rows themselves may be retained
// indefinitely; only the slice is reused.
func (r *Rows) Batch() []Row { return r.bview }

// Row returns the current row. It is valid after a Next that returned true;
// the row's backing storage is never reused, so retaining it is safe.
func (r *Rows) Row() Row { return r.row }

// Err returns the first error encountered while scanning, or nil.
func (r *Rows) Err() error { return r.err }

// Close releases the underlying cursor. Idempotent.
func (r *Rows) Close() error {
	if !r.closed {
		r.closed = true
		r.cur.Close()
	}
	return nil
}

// drainRows materializes an iterator — the legacy scan methods' shape.
func drainRows(r *Rows) ([]Row, error) {
	defer r.Close()
	out := make([]Row, 0, 16)
	for r.Next() {
		out = append(out, r.Row())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// applyRange narrows [start, end) with a ScanRange. encodeNext encodes the
// scan prefix extended with one more column value.
func applyRange(start, end []byte, rng *ScanRange, encodeNext func(v any) ([]byte, error)) ([]byte, []byte, error) {
	if rng == nil {
		return start, end, nil
	}
	if rng.Lo != nil {
		b, err := encodeNext(rng.Lo)
		if err != nil {
			return nil, nil, err
		}
		if rng.LoExcl {
			// Skip every key whose next column equals Lo.
			b = keys.PrefixEnd(b)
		}
		if b != nil && keys.Compare(b, start) > 0 {
			start = b
		}
	}
	if rng.Hi != nil {
		b, err := encodeNext(rng.Hi)
		if err != nil {
			return nil, nil, err
		}
		if !rng.HiExcl {
			// Include every key whose next column equals Hi.
			b = keys.PrefixEnd(b)
		}
		if b != nil && (end == nil || keys.Compare(b, end) < 0) {
			end = b
		}
	}
	return start, end, nil
}

// extendPrefix returns a copy of prefix with v appended (never aliasing the
// caller's backing array).
func extendPrefix(prefix []any, v any) []any {
	out := make([]any, 0, len(prefix)+1)
	out = append(out, prefix...)
	return append(out, v)
}

// scanSetup carries the per-scan pieces a pushdown-aware scan shares
// across its shard cursors: the fragment encoded once, the per-query
// counters every cursor feeds, and either a per-pair resolve function or a
// batch-decode mode that turns shipped pairs back into rows.
type scanSetup struct {
	frag     []byte
	ctrs     *stats.ScanCounters
	resolve  func(ctx context.Context, kv mvcc.KV) (Row, bool, error)
	projFrag *fragment.Fragment
	narrow   []table.Kind
	joined   *fragment.JoinedDecoder
}

// setupScan validates a scan's pushdown fragment against the schema and
// prepares the shared scan state.
func setupScan(sch *table.Schema, o ScanOpts) (*scanSetup, error) {
	st := &scanSetup{ctrs: &stats.ScanCounters{}}
	p := o.Pushdown
	if p == nil {
		return st, nil
	}
	if len(p.Kinds) != len(sch.Columns) {
		return nil, fmt.Errorf("globaldb: pushdown fragment has %d column kinds for table %s with %d columns",
			len(p.Kinds), sch.Name, len(sch.Columns))
	}
	b, err := p.Encode()
	if err != nil {
		return nil, err
	}
	st.frag = b
	switch {
	case p.HasAggs():
		// Partial-aggregate rows: group values decoded from the
		// memcomparable key, one fragment.AggState per aggregate slot.
		st.resolve = func(_ context.Context, kv mvcc.KV) (Row, bool, error) {
			gvals, err := p.DecodeGroupKey(kv.Key)
			if err != nil {
				return nil, false, err
			}
			states, err := fragment.DecodeStates(kv.Value)
			if err != nil {
				return nil, false, err
			}
			if len(states) != len(p.Aggs) {
				return nil, false, fmt.Errorf("globaldb: partial row carries %d states for %d aggregates", len(states), len(p.Aggs))
			}
			row := make(Row, 0, len(gvals)+len(states))
			row = append(row, gvals...)
			for _, s := range states {
				row = append(row, s)
			}
			return row, true, nil
		}
	case p.Lookup != nil:
		// Lookup-joined rows: each shipped value carries the outer projected
		// columns followed by the shipped inner columns, decoding to one
		// combined row of outer width then inner width.
		st.joined = p.NewJoinedDecoder()
	case p.Project != nil:
		// Projected rows batch-decode back to schema width with unshipped
		// columns nil; the planner guarantees nothing downstream reads
		// them. The narrow kinds are computed once per scan, not per row.
		st.projFrag = p
		st.narrow = p.ProjectedKinds()
	}
	return st, nil
}

// spec builds one shard cursor's ScanSpec.
func (st *scanSetup) spec(start, end []byte, o ScanOpts) coordinator.ScanSpec {
	return coordinator.ScanSpec{
		Start: start, End: end,
		Limit: o.Limit, PageSize: o.PageSize, Prefetch: o.Prefetch,
		Frag: st.frag, Counters: st.ctrs,
	}
}

// combine merges per-shard cursors, adding the CN-final partial-aggregate
// merge when the scan's fragment aggregates.
func (st *scanSetup) combine(curs []coordinator.BatchCursor, keyOrder bool, o ScanOpts) coordinator.BatchCursor {
	cur := combineCursors(curs, keyOrder)
	if o.Pushdown != nil && o.Pushdown.HasAggs() {
		cur = coordinator.MergeAggregates(cur, fragment.MergeEncodedStates)
	}
	return cur
}

// pkRowsSpec resolves everything a streaming PK scan needs.
func pkRowsSpec(db *DB, sch *Schema, pkPrefix []any, o ScanOpts) (start, end []byte, shard int, err error) {
	start, end, shard, err = pkScanBounds(db, sch, pkPrefix)
	if err != nil {
		return nil, nil, 0, err
	}
	if o.Range != nil && len(pkPrefix) >= len(sch.PK) {
		return nil, nil, 0, fmt.Errorf("globaldb: range scan on %s needs an unbound PK column after the prefix", sch.Name)
	}
	start, end, err = applyRange(start, end, o.Range, func(v any) ([]byte, error) {
		return sch.PrimaryKeyPrefix(extendPrefix(pkPrefix, v))
	})
	return start, end, shard, err
}

// indexRowsSpec resolves everything a streaming index scan needs.
func indexRowsSpec(s *Session, tableName, indexName string, prefix []any, o ScanOpts) (sch *Schema, start, end []byte, shard int, err error) {
	sch, ix, err := indexOf(s, tableName, indexName)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	start, end, shard, err = indexScanBounds(s.db, sch, ix, prefix)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if o.Range != nil && len(prefix) >= len(ix.Cols) {
		return nil, nil, nil, 0, fmt.Errorf("globaldb: range scan on %s.%s needs an unbound index column after the prefix", sch.Name, ix.Name)
	}
	start, end, err = applyRange(start, end, o.Range, func(v any) ([]byte, error) {
		return sch.IndexPrefix(ix, extendPrefix(prefix, v))
	})
	return sch, start, end, shard, err
}

// tableRowsBounds resolves the per-shard key range of a streaming full
// table scan, with an optional range on the leading PK column.
func tableRowsBounds(sch *Schema, o ScanOpts) (start, end []byte, err error) {
	start = sch.TablePrefix()
	end = keys.PrefixEnd(start)
	return applyRange(start, end, o.Range, func(v any) ([]byte, error) {
		return sch.PrimaryKeyPrefix([]any{v})
	})
}

// ScanPKRows streams rows whose primary key starts with pkPrefix, in key
// order, pulling pages from the shard primary on demand. The prefix must
// include the distribution column so the scan is single-shard.
func (tx *Tx) ScanPKRows(ctx context.Context, tableName string, pkPrefix []any, o ScanOpts) (*Rows, error) {
	sch, err := tx.sess.schemaOf(tableName)
	if err != nil {
		return nil, err
	}
	start, end, shard, err := pkRowsSpec(tx.sess.db, sch, pkPrefix, o)
	if err != nil {
		return nil, err
	}
	st, err := setupScan(sch, o)
	if err != nil {
		return nil, err
	}
	cur := st.combine([]coordinator.BatchCursor{tx.txn.ScanCursor(ctx, shard, st.spec(start, end, o))}, true, o)
	return newRows(ctx, sch, cur, o.Limit, st), nil
}

// ScanIndexRows streams rows matched by a secondary-index prefix, resolving
// each index entry to its row with a primary-key lookup on the same shard.
func (tx *Tx) ScanIndexRows(ctx context.Context, tableName, indexName string, prefix []any, o ScanOpts) (*Rows, error) {
	if o.Pushdown != nil {
		return nil, fmt.Errorf("globaldb: pushdown is not supported on index scans (index entries carry keys, not rows)")
	}
	sch, start, end, shard, err := indexRowsSpec(tx.sess, tableName, indexName, prefix, o)
	if err != nil {
		return nil, err
	}
	st, err := setupScan(sch, o)
	if err != nil {
		return nil, err
	}
	cur := tx.txn.ScanCursor(ctx, shard, st.spec(start, end, o))
	st.resolve = func(ctx context.Context, kv mvcc.KV) (Row, bool, error) {
		v, found, err := tx.txn.Get(ctx, shard, kv.Value) // index value = pk
		if err != nil || !found {
			return nil, false, err
		}
		r, err := sch.DecodeRow(v)
		return r, err == nil, err
	}
	return newRows(ctx, sch, cur, o.Limit, st), nil
}

// ScanTableRows streams every row of a table, merging per-shard paged
// cursors so rows arrive in global primary-key order (unlike the legacy
// ScanTable, which concatenates shards).
func (tx *Tx) ScanTableRows(ctx context.Context, tableName string, o ScanOpts) (*Rows, error) {
	return tx.tableRows(ctx, tableName, o, true)
}

func (tx *Tx) tableRows(ctx context.Context, tableName string, o ScanOpts, keyOrder bool) (*Rows, error) {
	sch, err := tx.sess.schemaOf(tableName)
	if err != nil {
		return nil, err
	}
	start, end, err := tableRowsBounds(sch, o)
	if err != nil {
		return nil, err
	}
	st, err := setupScan(sch, o)
	if err != nil {
		return nil, err
	}
	// Every shard cursor starts its prefetcher at creation, so all
	// shards' routing lookups and first pages are issued concurrently and
	// the cross-shard scan's setup costs one round trip, not one per
	// shard.
	curs := tx.txn.ScanCursors(ctx, tx.sess.db.c.Shards(), st.spec(start, end, o))
	return newRows(ctx, sch, st.combine(curs, keyOrder, o), o.Limit, st), nil
}

// ScanPKRows streams rows by primary-key prefix at the query's snapshot.
func (q *Query) ScanPKRows(ctx context.Context, tableName string, pkPrefix []any, o ScanOpts) (*Rows, error) {
	sch, err := q.sess.schemaOf(tableName)
	if err != nil {
		return nil, err
	}
	start, end, shard, err := pkRowsSpec(q.sess.db, sch, pkPrefix, o)
	if err != nil {
		return nil, err
	}
	st, err := setupScan(sch, o)
	if err != nil {
		return nil, err
	}
	cur := st.combine([]coordinator.BatchCursor{q.ro.ScanCursor(ctx, shard, st.spec(start, end, o))}, true, o)
	return newRows(ctx, sch, cur, o.Limit, st), nil
}

// ScanIndexRows streams rows matched by a secondary-index prefix.
func (q *Query) ScanIndexRows(ctx context.Context, tableName, indexName string, prefix []any, o ScanOpts) (*Rows, error) {
	if o.Pushdown != nil {
		return nil, fmt.Errorf("globaldb: pushdown is not supported on index scans (index entries carry keys, not rows)")
	}
	sch, start, end, shard, err := indexRowsSpec(q.sess, tableName, indexName, prefix, o)
	if err != nil {
		return nil, err
	}
	st, err := setupScan(sch, o)
	if err != nil {
		return nil, err
	}
	cur := q.ro.ScanCursor(ctx, shard, st.spec(start, end, o))
	st.resolve = func(ctx context.Context, kv mvcc.KV) (Row, bool, error) {
		v, found, err := q.ro.Get(ctx, shard, kv.Value)
		if err != nil || !found {
			return nil, false, err
		}
		r, err := sch.DecodeRow(v)
		return r, err == nil, err
	}
	return newRows(ctx, sch, cur, o.Limit, st), nil
}

// ScanTableRows streams every row of a table in global primary-key order at
// the query's snapshot.
func (q *Query) ScanTableRows(ctx context.Context, tableName string, o ScanOpts) (*Rows, error) {
	return q.tableRows(ctx, tableName, o, true)
}

func (q *Query) tableRows(ctx context.Context, tableName string, o ScanOpts, keyOrder bool) (*Rows, error) {
	sch, err := q.sess.schemaOf(tableName)
	if err != nil {
		return nil, err
	}
	start, end, err := tableRowsBounds(sch, o)
	if err != nil {
		return nil, err
	}
	st, err := setupScan(sch, o)
	if err != nil {
		return nil, err
	}
	// As on the read-write path: the per-shard prefetchers issue replica
	// selection and first pages concurrently instead of serially.
	curs := q.ro.ScanCursors(ctx, q.sess.db.c.Shards(), st.spec(start, end, o))
	return newRows(ctx, sch, st.combine(curs, keyOrder, o), o.Limit, st), nil
}

func combineCursors(curs []coordinator.BatchCursor, keyOrder bool) coordinator.BatchCursor {
	if len(curs) == 1 {
		return curs[0]
	}
	if keyOrder {
		return coordinator.MergeCursors(curs...)
	}
	return coordinator.ChainCursors(curs...)
}
