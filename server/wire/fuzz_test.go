package wire

import (
	"bytes"
	"testing"
)

// fuzzFrames encodes one of every message as a complete frame; they seed
// the corpus alongside the checked-in testdata/fuzz files.
func fuzzFrames(tb testing.TB) [][]byte {
	var out [][]byte
	for _, m := range testMessages() {
		b, err := AppendFrame(nil, m)
		if err != nil {
			tb.Fatalf("encoding seed %v: %v", m.Type(), err)
		}
		out = append(out, b)
	}
	return out
}

// FuzzWireDecode feeds arbitrary bytes through the frame reader, the way a
// hostile client would: ReadMessage must reject malformed frames with an
// error — the server answers with a protocol Error and closes the
// connection — and never panic. Anything it accepts must re-encode and
// re-decode canonically (the same property the fragment codec fuzzer
// holds).
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzFrames(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, byte(MsgPing)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for {
			m, err := rd.ReadMessage()
			if err != nil {
				return // malformed input must be rejected, never panic
			}
			enc, err := AppendFrame(nil, m)
			if err != nil {
				t.Fatalf("decoded %v does not re-encode: %v", m.Type(), err)
			}
			m2, err := NewReader(bytes.NewReader(enc)).ReadMessage()
			if err != nil {
				t.Fatalf("re-encoded %v does not decode: %v", m.Type(), err)
			}
			// Compare encodings, not structs: the encoding is canonical,
			// and byte equality sidesteps NaN != NaN on float values.
			enc2, err := AppendFrame(nil, m2)
			if err != nil {
				t.Fatalf("second re-encode: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("round trip not canonical:\n  first:  %x\n  second: %x", enc, enc2)
			}
		}
	})
}

// TestFuzzSeedsRoundTrip pins the deterministic property the fuzzer
// explores: every seed frame decodes and re-encodes byte-identically.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	for i, seed := range fuzzFrames(t) {
		m, err := NewReader(bytes.NewReader(seed)).ReadMessage()
		if err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		enc, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("seed %d re-encode: %v", i, err)
		}
		if !bytes.Equal(enc, seed) {
			t.Fatalf("seed %d (%v): encoding not canonical", i, m.Type())
		}
	}
}
