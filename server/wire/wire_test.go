package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"globaldb"
)

// testMessages is one of every message, with every field exercised.
func testMessages() []Message {
	return []Message{
		&Hello{Version: ProtocolVersion, Region: "xian", Staleness: "50ms"},
		&Hello{Version: 7},
		&HelloOK{Region: "dongguan", Mode: "GTM"},
		&Query{SQL: "SELECT * FROM t WHERE k = ?", Args: []any{int64(1)}},
		&Query{SQL: "CREATE TABLE t (k BIGINT, PRIMARY KEY (k)); INSERT INTO t VALUES (1);"},
		&Query{SQL: "SELECT ?", Args: []any{nil, int64(-42), 2.5, "it's", []byte{0, 0xff}, true, false}},
		&Parse{Name: "s1", SQL: "SELECT k FROM t WHERE k = $1"},
		&ParseOK{NumParams: 3},
		&Execute{Name: "s1", Args: []any{int64(9)}},
		&CloseStmt{Name: "s1"},
		&Reset{},
		&Ping{},
		&Pong{},
		&Cancel{},
		&RowHeader{Columns: []string{"k", "v"}, OnReplicas: true},
		&RowHeader{},
		&RowBatch{Rows: [][]any{{int64(1), "a"}, {int64(2), nil}}},
		&RowBatch{},
		&Done{Affected: 3, Msg: "INSERT 3", InTxn: true, Canceled: true,
			Stats: globaldb.ScanStats{StorageRows: 2000, DNFilteredRows: 1800, WANRows: 200,
				PagesFetched: 8, PrefetchHits: 7, WANWait: 1500 * time.Microsecond}},
		&Done{},
		&Error{Code: "statement", Msg: "gsql: no such table"},
		&Stats{},
		&StatsResult{Accepted: 12, Active: 3, Statements: 400, RowsStreamed: 90000,
			Canceled: 2, Panics: 1, InFlight: 5,
			Latencies: []StmtLatency{
				{Type: "select", Count: 350, SumNanos: 7e9, P50Nanos: 1 << 20, P95Nanos: 1 << 24, P99Nanos: 1 << 26},
				{Type: "insert", Count: 50, SumNanos: 5e8, P50Nanos: 1 << 19, P95Nanos: 1 << 22, P99Nanos: 1 << 23},
			}},
		&StatsResult{},
	}
}

// TestMessageRoundTrip pins every message's encode/decode round trip,
// including frame-level writing and reading back-to-back frames from one
// stream.
func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := testMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write %v: %v", m.Type(), err)
		}
	}
	rd := NewReader(&buf)
	for i, want := range msgs {
		got, err := rd.ReadMessage()
		if err != nil {
			t.Fatalf("read %d (%v): %v", i, want.Type(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("message %d: got %#v, want %#v", i, got, want)
		}
	}
	if _, err := rd.ReadMessage(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

// TestMalformedFrames pins the rejection paths: bad lengths, unknown
// types, truncated and trailing payload bytes must error (never panic) and
// identify a protocol error where framing sync is lost.
func TestMalformedFrames(t *testing.T) {
	frame := func(payload ...byte) []byte {
		b := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
		return append(b, payload...)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"zero length", frame()},
		{"huge length", binary.BigEndian.AppendUint32(nil, MaxFrameSize+1)},
		{"unknown type", frame(0xEE)},
		{"truncated header", []byte{0, 0}},
		{"truncated payload", binary.BigEndian.AppendUint32(nil, 100)},
		{"hello truncated", frame(byte(MsgHello), 1)},
		{"trailing bytes", frame(byte(MsgPing), 1, 2, 3)},
		{"query bad arg tag", frame(byte(MsgQuery), 1, 'x', 1, 0xEE)},
		{"done truncated", frame(byte(MsgDone), 2)},
		{"batch hostile row count", frame(byte(MsgRowBatch), 0xff, 0xff, 0xff, 0xff, 0x07)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(bytes.NewReader(tc.b)).ReadMessage()
			if err == nil {
				t.Fatal("malformed frame accepted")
			}
			if errors.Is(err, io.EOF) && tc.name != "truncated header" {
				t.Fatalf("malformed frame read as clean EOF: %v", err)
			}
		})
	}
}

// TestValueEncodeRejectsUnknownTypes pins that unsupported Go types fail at
// encode time instead of producing undecodable bytes.
func TestValueEncodeRejectsUnknownTypes(t *testing.T) {
	if _, err := AppendFrame(nil, &Query{SQL: "SELECT ?", Args: []any{time.Now()}}); err == nil {
		t.Fatal("time.Time argument must be rejected at encode time")
	}
	if _, err := AppendFrame(nil, &RowBatch{Rows: [][]any{{struct{}{}}}}); err == nil {
		t.Fatal("struct value must be rejected at encode time")
	}
}
