// Package wire defines GlobalDB's client/server wire protocol: a
// length-prefixed binary framing and the message codecs the network server
// and the driver's TCP transport speak. The protocol is deliberately small —
// a handshake carrying the session options the driver DSN carries in
// process (region, staleness), simple queries, prepared-statement
// parse/execute, and a streaming result shape — so that one connection maps
// exactly onto one gsql session and results stream off the prefetching
// batch cursor pipeline without materializing server-side.
//
// Framing: every message crosses the wire as
//
//	[4-byte big-endian length] [1-byte message type] [payload]
//
// where length counts the type byte plus the payload. Lengths of zero or
// above MaxFrameSize are rejected before any payload allocation, so a
// hostile peer cannot make the reader allocate unbounded memory. Payloads
// use the same hand-rolled primitives as the plan-fragment codec: uvarint
// lengths, type-tagged SQL values, explicit bounds checks everywhere —
// malformed bytes must yield ErrProtocol, never a panic (the fuzz targets
// in this package hold the codec to that).
//
// A statement's response is always the same frame sequence:
//
//	RowHeader, RowBatch*, Done       (success; zero columns for non-reads)
//	... Error                        (failure, possibly mid-stream)
//
// Rows are flushed per batch, not per row, and the final Done frame carries
// the per-layer scan counters (storage / DN-filtered / WAN rows, page and
// prefetch observability) so network clients see the same pushdown
// observability in-process callers get from Result.Scan.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"globaldb"
)

// ProtocolVersion is the wire protocol version carried in the handshake.
// A server refuses hellos with a version it does not speak.
const ProtocolVersion = 1

// MaxFrameSize bounds one frame's declared length (type byte + payload).
// Readers reject larger declarations before allocating.
const MaxFrameSize = 8 << 20

// ErrProtocol marks malformed frames or payloads. A peer receiving it has
// lost framing sync and must close the connection.
var ErrProtocol = errors.New("wire: protocol error")

// MsgType identifies a frame's message.
type MsgType uint8

// Message types. Client-to-server first, server-to-client second.
const (
	// MsgHello opens a connection: protocol version plus the session
	// options (region, staleness) the in-process driver DSN carries.
	MsgHello MsgType = iota + 1
	// MsgQuery runs one SQL statement (or a multi-statement script when
	// Args is empty) and streams its result.
	MsgQuery
	// MsgParse prepares a named statement server-side.
	MsgParse
	// MsgExecute runs a previously parsed statement with bound arguments.
	MsgExecute
	// MsgCloseStmt releases a named prepared statement.
	MsgCloseStmt
	// MsgReset readies the connection for reuse by a new logical client:
	// the server rolls back any open transaction.
	MsgReset
	// MsgPing checks connection liveness.
	MsgPing
	// MsgCancel asks the server to stop streaming the in-flight result.
	// Sent mid-stream; the server answers with a Done frame marked
	// Canceled. A cancel arriving after the stream finished is ignored.
	MsgCancel

	// MsgHelloOK accepts a handshake.
	MsgHelloOK
	// MsgRowHeader starts a statement's response: output columns (empty
	// for row-less statements) and where the read was served.
	MsgRowHeader
	// MsgRowBatch carries one batch of result rows.
	MsgRowBatch
	// MsgDone ends a statement's response: rows affected, the statement
	// message, transaction state, and the scan counters.
	MsgDone
	// MsgError reports a statement or protocol failure.
	MsgError
	// MsgParseOK acknowledges a Parse with the statement's parameter count.
	MsgParseOK
	// MsgPong answers a Ping.
	MsgPong
	// MsgStats is the admin request for the server's live counters and
	// latency histograms. Answered with StatsResult.
	MsgStats
	// MsgStatsResult answers a Stats request.
	MsgStatsResult
)

var msgNames = map[MsgType]string{
	MsgHello: "Hello", MsgQuery: "Query", MsgParse: "Parse", MsgExecute: "Execute",
	MsgCloseStmt: "CloseStmt", MsgReset: "Reset", MsgPing: "Ping", MsgCancel: "Cancel",
	MsgHelloOK: "HelloOK", MsgRowHeader: "RowHeader", MsgRowBatch: "RowBatch",
	MsgDone: "Done", MsgError: "Error", MsgParseOK: "ParseOK", MsgPong: "Pong",
	MsgStats: "Stats", MsgStatsResult: "StatsResult",
}

func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is one decoded protocol message.
type Message interface {
	// Type returns the frame type byte identifying the message.
	Type() MsgType
	// append serializes the payload (everything after the type byte).
	append(b []byte) ([]byte, error)
}

// Hello opens a connection.
type Hello struct {
	// Version is the client's ProtocolVersion.
	Version uint32
	// Region is the home region of the server-side session; empty selects
	// the cluster's first region.
	Region string
	// Staleness mirrors the driver DSN option: "" or "none" for primary
	// reads, "any" for unbounded replica reads, or a duration string.
	Staleness string
}

// HelloOK accepts a handshake.
type HelloOK struct {
	// Region is the session's resolved home region.
	Region string
	// Mode is the cluster's timestamp mode (GTM or GClock), informational.
	Mode string
}

// Query runs SQL and streams the result. With Args bound, SQL must be a
// single statement; without Args it may be a multi-statement script (the
// response then describes the script's last statement).
type Query struct {
	SQL  string
	Args []any
}

// Parse prepares a named statement.
type Parse struct {
	Name string
	SQL  string
}

// ParseOK acknowledges a Parse.
type ParseOK struct {
	// NumParams is how many placeholder arguments Execute must bind.
	NumParams int
}

// Execute runs a parsed statement.
type Execute struct {
	Name string
	Args []any
}

// CloseStmt releases a parsed statement.
type CloseStmt struct {
	Name string
}

// Reset rolls back any open transaction, readying the connection for a new
// logical client. Answered with Done.
type Reset struct{}

// Ping checks liveness. Answered with Pong.
type Ping struct{}

// Pong answers Ping.
type Pong struct{}

// Cancel stops the in-flight stream.
type Cancel struct{}

// RowHeader starts a statement response.
type RowHeader struct {
	// Columns names the output columns; empty for row-less statements.
	Columns []string
	// OnReplicas reports whether the read was served from asynchronous
	// replicas rather than shard primaries.
	OnReplicas bool
}

// RowBatch carries one batch of rows; every row has RowHeader's width.
type RowBatch struct {
	Rows [][]any
}

// Done ends a statement response.
type Done struct {
	// Affected counts rows written by INSERT/UPDATE/DELETE.
	Affected int64
	// Msg is the statement's human-readable summary.
	Msg string
	// InTxn reports whether the session has an explicit transaction open
	// after this statement — clients use it to reset pooled connections.
	InTxn bool
	// Canceled marks a stream stopped by a client Cancel: the rows sent
	// before it are valid but the result is incomplete.
	Canceled bool
	// Stats carries the statement's per-layer scan counters.
	Stats globaldb.ScanStats
}

// Error reports a failure. A statement error leaves the connection usable;
// a protocol error (Code "protocol") means framing sync is lost and the
// sender closes the connection after writing it.
type Error struct {
	Code string
	Msg  string
}

// Stats asks for the server's live counters and per-statement-type
// latency histograms. An admin/ops frame: globalctl and monitoring
// clients send it on an ordinary connection between statements.
type Stats struct{}

// StmtLatency is one statement class's latency summary in a StatsResult.
type StmtLatency struct {
	// Type is the statement class ("select", "insert", ...).
	Type string
	// Count and SumNanos aggregate every observation of the class.
	Count    int64
	SumNanos int64
	// P50Nanos/P95Nanos/P99Nanos are quantiles of the class's histogram.
	P50Nanos int64
	P95Nanos int64
	P99Nanos int64
}

// StatsResult answers Stats with a snapshot of the server's counters.
type StatsResult struct {
	// Accepted..Panics mirror stats.ServerSnapshot.
	Accepted     int64
	Active       int64
	Statements   int64
	RowsStreamed int64
	Canceled     int64
	Panics       int64
	// InFlight is the number of statements executing right now.
	InFlight int64
	// Latencies summarizes each statement class with observations.
	Latencies []StmtLatency
}

// Type implementations.
func (*Hello) Type() MsgType     { return MsgHello }
func (*HelloOK) Type() MsgType   { return MsgHelloOK }
func (*Query) Type() MsgType     { return MsgQuery }
func (*Parse) Type() MsgType     { return MsgParse }
func (*ParseOK) Type() MsgType   { return MsgParseOK }
func (*Execute) Type() MsgType   { return MsgExecute }
func (*CloseStmt) Type() MsgType { return MsgCloseStmt }
func (*Reset) Type() MsgType     { return MsgReset }
func (*Ping) Type() MsgType      { return MsgPing }
func (*Pong) Type() MsgType      { return MsgPong }
func (*Cancel) Type() MsgType    { return MsgCancel }
func (*RowHeader) Type() MsgType { return MsgRowHeader }
func (*RowBatch) Type() MsgType  { return MsgRowBatch }
func (*Done) Type() MsgType      { return MsgDone }
func (*Error) Type() MsgType     { return MsgError }
func (*Stats) Type() MsgType     { return MsgStats }

// Type returns MsgStatsResult.
func (*StatsResult) Type() MsgType { return MsgStatsResult }

// ---- Payload primitives ----
//
// The same shapes as the fragment codec: uvarint lengths guarded against
// hostile values, type-tagged SQL values, explicit remaining-bytes checks.

// Value type tags.
const (
	valNil byte = iota
	valInt
	valFloat
	valString
	valBytes
	valBool
)

func appendValue(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, valNil), nil
	case int64:
		b = append(b, valInt)
		return binary.BigEndian.AppendUint64(b, uint64(x)), nil
	case float64:
		b = append(b, valFloat)
		return binary.BigEndian.AppendUint64(b, math.Float64bits(x)), nil
	case string:
		b = append(b, valString)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	case []byte:
		b = append(b, valBytes)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...), nil
	case bool:
		if x {
			return append(b, valBool, 1), nil
		}
		return append(b, valBool, 0), nil
	default:
		return nil, fmt.Errorf("wire: unsupported value type %T", v)
	}
}

func decodeValue(b []byte) (any, []byte, error) {
	if len(b) == 0 {
		return nil, nil, ErrProtocol
	}
	tag, b := b[0], b[1:]
	switch tag {
	case valNil:
		return nil, b, nil
	case valInt:
		if len(b) < 8 {
			return nil, nil, ErrProtocol
		}
		return int64(binary.BigEndian.Uint64(b[:8])), b[8:], nil
	case valFloat:
		if len(b) < 8 {
			return nil, nil, ErrProtocol
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b[:8])), b[8:], nil
	case valString:
		n, b, err := decodeLen(b)
		if err != nil || len(b) < n {
			return nil, nil, ErrProtocol
		}
		return string(b[:n]), b[n:], nil
	case valBytes:
		n, b, err := decodeLen(b)
		if err != nil || len(b) < n {
			return nil, nil, ErrProtocol
		}
		return append([]byte(nil), b[:n]...), b[n:], nil
	case valBool:
		if len(b) < 1 {
			return nil, nil, ErrProtocol
		}
		return b[0] != 0, b[1:], nil
	default:
		return nil, nil, fmt.Errorf("%w: value tag %#x", ErrProtocol, tag)
	}
}

// decodeLen reads a uvarint length, rejecting values that do not fit a
// non-negative int32 so a hostile length never reaches make().
func decodeLen(b []byte) (int, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || v > math.MaxInt32 {
		return 0, nil, ErrProtocol
	}
	return int(v), b[n:], nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, b, err := decodeLen(b)
	if err != nil || len(b) < n {
		return "", nil, ErrProtocol
	}
	return string(b[:n]), b[n:], nil
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func decodeBool(b []byte) (bool, []byte, error) {
	if len(b) == 0 {
		return false, nil, ErrProtocol
	}
	return b[0] != 0, b[1:], nil
}

func appendValues(b []byte, vals []any) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	var err error
	for _, v := range vals {
		if b, err = appendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeValues(b []byte) ([]any, []byte, error) {
	n, b, err := decodeLen(b)
	if err != nil || n > len(b) { // each value takes >= 1 byte
		return nil, nil, ErrProtocol
	}
	if n == 0 {
		return nil, b, nil
	}
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		if vals[i], b, err = decodeValue(b); err != nil {
			return nil, nil, err
		}
	}
	return vals, b, nil
}

// ---- Message payload codecs ----

func (m *Hello) append(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(m.Version))
	b = appendString(b, m.Region)
	return appendString(b, m.Staleness), nil
}

func decodeHello(b []byte) (*Hello, []byte, error) {
	v, b, err := decodeLen(b)
	if err != nil {
		return nil, nil, err
	}
	m := &Hello{Version: uint32(v)}
	if m.Region, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if m.Staleness, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (m *HelloOK) append(b []byte) ([]byte, error) {
	b = appendString(b, m.Region)
	return appendString(b, m.Mode), nil
}

func decodeHelloOK(b []byte) (*HelloOK, []byte, error) {
	m := &HelloOK{}
	var err error
	if m.Region, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if m.Mode, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (m *Query) append(b []byte) ([]byte, error) {
	b = appendString(b, m.SQL)
	return appendValues(b, m.Args)
}

func decodeQuery(b []byte) (*Query, []byte, error) {
	m := &Query{}
	var err error
	if m.SQL, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if m.Args, b, err = decodeValues(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (m *Parse) append(b []byte) ([]byte, error) {
	b = appendString(b, m.Name)
	return appendString(b, m.SQL), nil
}

func decodeParse(b []byte) (*Parse, []byte, error) {
	m := &Parse{}
	var err error
	if m.Name, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if m.SQL, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (m *ParseOK) append(b []byte) ([]byte, error) {
	return binary.AppendUvarint(b, uint64(m.NumParams)), nil
}

func decodeParseOK(b []byte) (*ParseOK, []byte, error) {
	n, b, err := decodeLen(b)
	if err != nil {
		return nil, nil, err
	}
	return &ParseOK{NumParams: n}, b, nil
}

func (m *Execute) append(b []byte) ([]byte, error) {
	b = appendString(b, m.Name)
	return appendValues(b, m.Args)
}

func decodeExecute(b []byte) (*Execute, []byte, error) {
	m := &Execute{}
	var err error
	if m.Name, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if m.Args, b, err = decodeValues(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (m *CloseStmt) append(b []byte) ([]byte, error) {
	return appendString(b, m.Name), nil
}

func decodeCloseStmt(b []byte) (*CloseStmt, []byte, error) {
	m := &CloseStmt{}
	var err error
	if m.Name, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (*Reset) append(b []byte) ([]byte, error)  { return b, nil }
func (*Ping) append(b []byte) ([]byte, error)   { return b, nil }
func (*Pong) append(b []byte) ([]byte, error)   { return b, nil }
func (*Cancel) append(b []byte) ([]byte, error) { return b, nil }

func (m *RowHeader) append(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(m.Columns)))
	for _, c := range m.Columns {
		b = appendString(b, c)
	}
	return appendBool(b, m.OnReplicas), nil
}

func decodeRowHeader(b []byte) (*RowHeader, []byte, error) {
	n, b, err := decodeLen(b)
	if err != nil || n > len(b) { // each column name takes >= 1 byte
		return nil, nil, ErrProtocol
	}
	m := &RowHeader{}
	if n > 0 {
		m.Columns = make([]string, n)
		for i := 0; i < n; i++ {
			if m.Columns[i], b, err = decodeString(b); err != nil {
				return nil, nil, err
			}
		}
	}
	if m.OnReplicas, b, err = decodeBool(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (m *RowBatch) append(b []byte) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(m.Rows)))
	var err error
	for _, row := range m.Rows {
		if b, err = appendValues(b, row); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeRowBatch(b []byte) (*RowBatch, []byte, error) {
	n, b, err := decodeLen(b)
	if err != nil || n > len(b) { // each row takes >= 1 byte
		return nil, nil, ErrProtocol
	}
	m := &RowBatch{}
	if n > 0 {
		m.Rows = make([][]any, n)
		for i := 0; i < n; i++ {
			if m.Rows[i], b, err = decodeValues(b); err != nil {
				return nil, nil, err
			}
		}
	}
	return m, b, nil
}

func (m *Done) append(b []byte) ([]byte, error) {
	b = binary.AppendVarint(b, m.Affected)
	b = appendString(b, m.Msg)
	b = appendBool(b, m.InTxn)
	b = appendBool(b, m.Canceled)
	b = binary.AppendVarint(b, m.Stats.StorageRows)
	b = binary.AppendVarint(b, m.Stats.DNFilteredRows)
	b = binary.AppendVarint(b, m.Stats.WANRows)
	b = binary.AppendVarint(b, m.Stats.PagesFetched)
	b = binary.AppendVarint(b, m.Stats.PrefetchHits)
	return binary.AppendVarint(b, int64(m.Stats.WANWait)), nil
}

func decodeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, ErrProtocol
	}
	return v, b[n:], nil
}

func decodeDone(b []byte) (*Done, []byte, error) {
	m := &Done{}
	var err error
	if m.Affected, b, err = decodeVarint(b); err != nil {
		return nil, nil, err
	}
	if m.Msg, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if m.InTxn, b, err = decodeBool(b); err != nil {
		return nil, nil, err
	}
	if m.Canceled, b, err = decodeBool(b); err != nil {
		return nil, nil, err
	}
	if m.Stats.StorageRows, b, err = decodeVarint(b); err != nil {
		return nil, nil, err
	}
	if m.Stats.DNFilteredRows, b, err = decodeVarint(b); err != nil {
		return nil, nil, err
	}
	if m.Stats.WANRows, b, err = decodeVarint(b); err != nil {
		return nil, nil, err
	}
	if m.Stats.PagesFetched, b, err = decodeVarint(b); err != nil {
		return nil, nil, err
	}
	if m.Stats.PrefetchHits, b, err = decodeVarint(b); err != nil {
		return nil, nil, err
	}
	var wait int64
	if wait, b, err = decodeVarint(b); err != nil {
		return nil, nil, err
	}
	m.Stats.WANWait = time.Duration(wait)
	return m, b, nil
}

func (m *Error) append(b []byte) ([]byte, error) {
	b = appendString(b, m.Code)
	return appendString(b, m.Msg), nil
}

func decodeError(b []byte) (*Error, []byte, error) {
	m := &Error{}
	var err error
	if m.Code, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	if m.Msg, b, err = decodeString(b); err != nil {
		return nil, nil, err
	}
	return m, b, nil
}

func (*Stats) append(b []byte) ([]byte, error) { return b, nil }

func (m *StatsResult) append(b []byte) ([]byte, error) {
	b = binary.AppendVarint(b, m.Accepted)
	b = binary.AppendVarint(b, m.Active)
	b = binary.AppendVarint(b, m.Statements)
	b = binary.AppendVarint(b, m.RowsStreamed)
	b = binary.AppendVarint(b, m.Canceled)
	b = binary.AppendVarint(b, m.Panics)
	b = binary.AppendVarint(b, m.InFlight)
	b = binary.AppendUvarint(b, uint64(len(m.Latencies)))
	for _, l := range m.Latencies {
		b = appendString(b, l.Type)
		b = binary.AppendVarint(b, l.Count)
		b = binary.AppendVarint(b, l.SumNanos)
		b = binary.AppendVarint(b, l.P50Nanos)
		b = binary.AppendVarint(b, l.P95Nanos)
		b = binary.AppendVarint(b, l.P99Nanos)
	}
	return b, nil
}

func decodeStatsResult(b []byte) (*StatsResult, []byte, error) {
	m := &StatsResult{}
	var err error
	for _, dst := range []*int64{
		&m.Accepted, &m.Active, &m.Statements, &m.RowsStreamed,
		&m.Canceled, &m.Panics, &m.InFlight,
	} {
		if *dst, b, err = decodeVarint(b); err != nil {
			return nil, nil, err
		}
	}
	n, b, err := decodeLen(b)
	if err != nil || n > len(b) { // each entry takes >= 6 bytes
		return nil, nil, ErrProtocol
	}
	for i := 0; i < n; i++ {
		var l StmtLatency
		if l.Type, b, err = decodeString(b); err != nil {
			return nil, nil, err
		}
		for _, dst := range []*int64{&l.Count, &l.SumNanos, &l.P50Nanos, &l.P95Nanos, &l.P99Nanos} {
			if *dst, b, err = decodeVarint(b); err != nil {
				return nil, nil, err
			}
		}
		m.Latencies = append(m.Latencies, l)
	}
	return m, b, nil
}

// ---- Framing ----

// AppendFrame serializes one message as a frame, appending to b.
func AppendFrame(b []byte, m Message) ([]byte, error) {
	// Reserve the length word, write type + payload, patch the length.
	start := len(b)
	b = append(b, 0, 0, 0, 0, byte(m.Type()))
	b, err := m.append(b)
	if err != nil {
		return nil, err
	}
	n := len(b) - start - 4
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrameSize", n)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(n))
	return b, nil
}

// WriteMessage frames and writes one message. Callers batching several
// frames (a row stream) should write through a bufio.Writer and flush per
// batch.
func WriteMessage(w io.Writer, m Message) error {
	b, err := AppendFrame(nil, m)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// DecodePayload decodes one message from its type byte and payload. The
// payload must be consumed exactly; trailing bytes are a protocol error.
func DecodePayload(t MsgType, b []byte) (Message, error) {
	var (
		m    Message
		rest []byte
		err  error
	)
	switch t {
	case MsgHello:
		m, rest, err = decodeHello(b)
	case MsgHelloOK:
		m, rest, err = decodeHelloOK(b)
	case MsgQuery:
		m, rest, err = decodeQuery(b)
	case MsgParse:
		m, rest, err = decodeParse(b)
	case MsgParseOK:
		m, rest, err = decodeParseOK(b)
	case MsgExecute:
		m, rest, err = decodeExecute(b)
	case MsgCloseStmt:
		m, rest, err = decodeCloseStmt(b)
	case MsgReset:
		m, rest = &Reset{}, b
	case MsgPing:
		m, rest = &Ping{}, b
	case MsgPong:
		m, rest = &Pong{}, b
	case MsgCancel:
		m, rest = &Cancel{}, b
	case MsgRowHeader:
		m, rest, err = decodeRowHeader(b)
	case MsgRowBatch:
		m, rest, err = decodeRowBatch(b)
	case MsgDone:
		m, rest, err = decodeDone(b)
	case MsgError:
		m, rest, err = decodeError(b)
	case MsgStats:
		m, rest = &Stats{}, b
	case MsgStatsResult:
		m, rest, err = decodeStatsResult(b)
	default:
		return nil, fmt.Errorf("%w: unknown message type %d", ErrProtocol, t)
	}
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %v", ErrProtocol, len(rest), t)
	}
	return m, nil
}

// Reader decodes frames from a stream, reusing one payload buffer across
// messages (decoded messages never alias it).
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps a stream for frame reading.
func NewReader(r io.Reader) *Reader {
	if br, ok := r.(*bufio.Reader); ok {
		return &Reader{r: br}
	}
	return &Reader{r: bufio.NewReader(r)}
}

// ReadMessage reads and decodes one frame. io.EOF marks a clean
// end-of-stream before a frame starts; a truncated frame is
// io.ErrUnexpectedEOF; malformed contents are ErrProtocol.
func (rd *Reader) ReadMessage() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrameSize {
		return nil, fmt.Errorf("%w: frame length %d", ErrProtocol, n)
	}
	if cap(rd.buf) < int(n) {
		rd.buf = make([]byte, n)
	}
	buf := rd.buf[:n]
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return DecodePayload(MsgType(buf[0]), buf[1:])
}
