package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"globaldb/internal/obs"
	"globaldb/server/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerPanicCounterBalance pins the teardown ordering audited in
// conn.go: a statement that panics mid-execution must still be counted,
// still observe a latency sample, and leave the in-flight gauge and
// active-connection gauge balanced once the connection is torn down.
func TestServerPanicCounterBalance(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{})

	testHookQuery = func(sql string) {
		if strings.Contains(sql, "PANIC_MARKER") {
			panic("injected executor bug")
		}
	}
	defer func() { testHookQuery = nil }()

	c := dialTest(t, srv)
	c.hello("", "")
	c.send(&wire.Query{SQL: "SELECT PANIC_MARKER"})
	if e, ok := c.recv().(*wire.Error); !ok || e.Code != "panic" {
		t.Fatalf("panicking statement answered %#v, want panic Error", e)
	}
	c.expectClosed()

	// The connection teardown is asynchronous to the Error frame.
	waitFor(t, "connection teardown", func() bool { return srv.Stats().Active == 0 })

	st := srv.Stats()
	if st.Statements != 1 {
		t.Fatalf("Statements = %d, want 1 (panicked statement must still count)", st.Statements)
	}
	if st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
	if v := srv.Metrics().Gauge("server_statements_in_flight").Value(); v != 0 {
		t.Fatalf("in-flight gauge = %d after panic, want 0", v)
	}
	hists := srv.Metrics().Histograms()
	sel := hists[obs.LabeledName("server_statement_latency_seconds", "type", "select")]
	if sel.Count != 1 {
		t.Fatalf("select latency histogram count = %d, want 1 (panic path must observe)", sel.Count)
	}
}

// TestServerSlowQueryLog pins that the slow-query log fires only for
// statements over the configured threshold.
func TestServerSlowQueryLog(t *testing.T) {
	db := newTestCluster(t)

	var mu sync.Mutex
	var lines []string
	record := func(line string) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, line)
	}
	logged := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}

	// A threshold no real statement reaches: nothing may fire.
	quiet := startTestServer(t, db, Options{SlowQueryThreshold: time.Hour, SlowQueryLog: record})
	c := dialTest(t, quiet)
	c.hello("", "")
	_, _, fin := c.query("CREATE TABLE slow_kv (k BIGINT, v BIGINT, PRIMARY KEY (k)) SHARD BY k")
	c.mustDone(fin)
	_, _, fin = c.query("INSERT INTO slow_kv VALUES (1, 10), (2, 20), (3, 30)")
	c.mustDone(fin)
	_, _, fin = c.query("SELECT * FROM slow_kv WHERE v >= 20")
	c.mustDone(fin)
	if got := logged(); len(got) != 0 {
		t.Fatalf("slow-query log fired below threshold: %q", got)
	}

	// A threshold every statement exceeds: the next statement must fire,
	// and the line must identify the statement and the threshold.
	eager := startTestServer(t, db, Options{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: record})
	c2 := dialTest(t, eager)
	c2.hello("", "")
	_, _, fin = c2.query("SELECT * FROM slow_kv WHERE v >= 20")
	c2.mustDone(fin)
	got := logged()
	if len(got) == 0 {
		t.Fatal("slow-query log did not fire above threshold")
	}
	if !strings.Contains(got[0], "slow query") || !strings.Contains(got[0], "SELECT * FROM slow_kv") {
		t.Fatalf("slow-query line %q missing marker or statement text", got[0])
	}
}

// TestServerStatsFrame round-trips the Stats admin frame over a real
// socket: counters, the in-flight gauge, and per-statement-type latency
// quantiles must reflect the statements this connection just ran.
func TestServerStatsFrame(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{})
	c := dialTest(t, srv)
	c.hello("", "")

	_, _, fin := c.query("CREATE TABLE st_kv (k BIGINT, v BIGINT, PRIMARY KEY (k)) SHARD BY k")
	c.mustDone(fin)
	_, _, fin = c.query("INSERT INTO st_kv VALUES (1, 10), (2, 20)")
	c.mustDone(fin)
	_, _, fin = c.query("SELECT * FROM st_kv WHERE v >= 10")
	c.mustDone(fin)

	c.send(&wire.Stats{})
	m := c.recv()
	st, ok := m.(*wire.StatsResult)
	if !ok {
		t.Fatalf("Stats answered %#v, want StatsResult", m)
	}
	if st.Accepted < 1 || st.Active != 1 {
		t.Fatalf("connection counters: accepted=%d active=%d, want >=1 and 1", st.Accepted, st.Active)
	}
	if st.Statements != 3 {
		t.Fatalf("Statements = %d, want 3", st.Statements)
	}
	// The Stats frame itself is not a statement and must not be in flight.
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d, want 0", st.InFlight)
	}
	byType := map[string]wire.StmtLatency{}
	for _, l := range st.Latencies {
		byType[l.Type] = l
	}
	for _, typ := range []string{"create", "insert", "select"} {
		l, found := byType[typ]
		if !found || l.Count != 1 {
			t.Fatalf("latency for %q = %+v, want count 1 (have %v)", typ, l, st.Latencies)
		}
		if l.SumNanos <= 0 || l.P50Nanos <= 0 || l.P99Nanos < l.P50Nanos {
			t.Fatalf("degenerate latency sample for %q: %+v", typ, l)
		}
	}
}

// TestMetricsEndpointUnderLoad scrapes the Prometheus endpoint while
// statements are executing and requires the exposition to carry the
// per-type latency summaries, the in-flight gauge, and the process-wide
// scan counters — the acceptance check for the -metrics listener.
func TestMetricsEndpointUnderLoad(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{})
	ep := httptest.NewServer(obs.MetricsHandler(srv.Metrics(), obs.Default))
	defer ep.Close()

	seed := dialTest(t, srv)
	seed.hello("", "")
	_, _, fin := seed.query("CREATE TABLE m_kv (k BIGINT, v BIGINT, PRIMARY KEY (k)) SHARD BY k")
	seed.mustDone(fin)
	_, _, fin = seed.query("INSERT INTO m_kv VALUES (1, 10), (2, 20), (3, 30), (4, 40)")
	seed.mustDone(fin)

	// Keep several connections querying while we scrape.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		c := dialTest(t, srv)
		c.hello("", "")
		wg.Add(1)
		go func(c *testClient) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, fin := c.query("SELECT * FROM m_kv WHERE v >= 20")
				if _, ok := fin.(*wire.Done); !ok {
					return
				}
			}
		}(c)
	}

	resp, err := http.Get(ep.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	text := string(body)
	for _, want := range []string{
		`# TYPE server_statement_latency_seconds summary`,
		`server_statement_latency_seconds{type="select",quantile="0.5"}`,
		`server_statement_latency_seconds_count{type="select"}`,
		`server_statements_in_flight`,
		`server_connections_active`,
		`globaldb_scan_storage_rows_total`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}
