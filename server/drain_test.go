package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"globaldb/server/wire"
)

// TestServerDrain pins graceful shutdown: with several streaming scans in
// flight, Shutdown must refuse new dials immediately, let every in-flight
// stream run to completion, close the drained connections, and leave no
// goroutines behind. CI runs this test repeatedly as a soak.
func TestServerDrain(t *testing.T) {
	db := newTestCluster(t)
	// Outsize the kernel's socket buffering (as in the cancel test) so a
	// paused client provably leaves its statement mid-stream server-side.
	const total = 2000
	seedBigTable(t, db, total, 8192)

	// Goroutine baseline after the cluster is up but before the server
	// starts: everything the server adds must be gone after Shutdown.
	baseline := runtime.NumGoroutine()

	srv := New(db, Options{BatchRows: 32})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	// Each client starts a streaming scan, reports in once the stream's
	// header arrives (the statement is now in flight server-side), then
	// pauses until released — so Shutdown begins with all N scans active.
	const clients = 6
	type result struct {
		rows int
		err  error
	}
	results := make(chan result, clients)
	ready := make(chan struct{}, clients)
	release := make(chan struct{})
	for i := 0; i < clients; i++ {
		go func() { results <- drainClient(addr, total, ready, release) }()
	}
	for i := 0; i < clients; i++ {
		select {
		case <-ready:
		case <-time.After(30 * time.Second):
			t.Fatal("clients did not reach in-flight state")
		}
	}

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(bg, 60*time.Second)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()

	// The listener closes as drain begins: new dials must stop being
	// served. (A dial may land in the accept backlog for an instant, so
	// poll.)
	deadline := time.Now().Add(10 * time.Second)
	for {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			break
		}
		nc.Close()
		if time.Now().After(deadline) {
			t.Fatal("server still accepting dials during drain")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Release the paused clients; every in-flight stream must complete
	// with its full row count and then see its connection closed.
	close(release)
	for i := 0; i < clients; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("drained client: %v", r.err)
			}
			if r.rows != total {
				t.Fatalf("drained client got %d rows, want %d", r.rows, total)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("client did not finish during drain")
		}
	}
	select {
	case err := <-shutErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Shutdown did not return")
	}

	// Leak guard: all connection handlers, read loops and the accept loop
	// must have unwound.
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}

	st := srv.Stats()
	if st.Active != 0 || st.Accepted < clients {
		t.Fatalf("post-drain counters: %+v", st)
	}
}

// drainClient runs one paused-then-released streaming scan. It avoids the
// testClient helper because it runs off the test goroutine.
func drainClient(addr string, total int, ready chan<- struct{}, release <-chan struct{}) (res struct {
	rows int
	err  error
}) {
	fail := func(err error) struct {
		rows int
		err  error
	} {
		res.err = err
		return res
	}
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return fail(err)
	}
	defer nc.Close()
	w := bufio.NewWriter(nc)
	rd := wire.NewReader(nc)
	send := func(m wire.Message) error {
		if err := wire.WriteMessage(w, m); err != nil {
			return err
		}
		return w.Flush()
	}
	if err := send(&wire.Hello{Version: wire.ProtocolVersion}); err != nil {
		return fail(err)
	}
	if m, err := rd.ReadMessage(); err != nil {
		return fail(err)
	} else if _, ok := m.(*wire.HelloOK); !ok {
		return fail(fmt.Errorf("handshake answered %#v", m))
	}
	if err := send(&wire.Query{SQL: "SELECT k, pad FROM big"}); err != nil {
		return fail(err)
	}
	if m, err := rd.ReadMessage(); err != nil {
		return fail(err)
	} else if _, ok := m.(*wire.RowHeader); !ok {
		return fail(fmt.Errorf("expected RowHeader, got %#v", m))
	}
	ready <- struct{}{}
	<-release
	for {
		m, err := rd.ReadMessage()
		if err != nil {
			return fail(fmt.Errorf("after %d rows: %w", res.rows, err))
		}
		switch m := m.(type) {
		case *wire.RowBatch:
			res.rows += len(m.Rows)
		case *wire.Done:
			if m.Canceled {
				return fail(errors.New("drain canceled an in-flight stream"))
			}
			// The statement finished during drain; the server now closes
			// the idle connection.
			nc.SetReadDeadline(time.Now().Add(30 * time.Second))
			if extra, err := rd.ReadMessage(); err == nil {
				return fail(fmt.Errorf("connection not closed after drain, read %#v", extra))
			}
			return res
		default:
			return fail(fmt.Errorf("unexpected %T mid-stream", m))
		}
	}
}
