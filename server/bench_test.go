package server

import (
	"context"
	"database/sql"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globaldb"
	"globaldb/driver"
	"globaldb/gsql"
)

// seedBenchTable loads n small rows into table bench.
func seedBenchTable(t testing.TB, db *globaldb.DB, n int) {
	t.Helper()
	sess, err := gsql.Connect(db, db.Regions()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(bg, "CREATE TABLE bench (k BIGINT, v TEXT, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	ins, err := sess.Prepare(bg, "INSERT INTO bench VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	if _, err := sess.Exec(bg, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := ins.Exec(bg, int64(i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Exec(bg, "COMMIT"); err != nil {
		t.Fatal(err)
	}
}

const benchKeys = 10000

// runMixedLoad drives ops operations — ~90% point gets, ~10% short
// streamed scans — through sqldb from `workers` concurrent goroutines and
// reports the first error.
func runMixedLoad(sqldb *sql.DB, workers int, ops int64) error {
	var (
		remaining atomic.Int64
		wg        sync.WaitGroup
		firstErr  atomic.Value
	)
	remaining.Store(ops)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, err) //nolint:errcheck
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for remaining.Add(-1) >= 0 {
				k := int64(rng.Intn(benchKeys))
				if rng.Intn(10) == 0 {
					// Streamed scan: 100 rows through the row-frame path.
					rows, err := sqldb.QueryContext(bg,
						"SELECT k, v FROM bench WHERE k >= ? ORDER BY k LIMIT 100", k)
					if err != nil {
						fail(err)
						return
					}
					for rows.Next() {
						var kk int64
						var v string
						if err := rows.Scan(&kk, &v); err != nil {
							fail(err)
							rows.Close()
							return
						}
					}
					if err := rows.Close(); err != nil {
						fail(err)
						return
					}
				} else {
					var v string
					if err := sqldb.QueryRowContext(bg,
						"SELECT v FROM bench WHERE k = ?", k).Scan(&v); err != nil {
						fail(err)
						return
					}
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// BenchmarkManyConnections measures server throughput as the number of
// concurrent client connections grows: each sub-benchmark opens its own
// TCP pool sized to the connection count and drives the mixed point-get /
// streamed-scan load with one worker per connection.
func BenchmarkManyConnections(b *testing.B) {
	db := newTestCluster(b)
	seedBenchTable(b, db, benchKeys)
	srv := startTestServer(b, db, Options{})
	addr := srv.Addr().String()

	for _, conns := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			nc := driver.NewNetConnector(addr, driver.Config{MaxConns: conns, MaxIdle: conns})
			defer nc.Close()
			sqldb := sql.OpenDB(nc)
			defer sqldb.Close()
			sqldb.SetMaxOpenConns(conns)
			sqldb.SetMaxIdleConns(conns)
			if err := sqldb.PingContext(bg); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := runMixedLoad(sqldb, conns, int64(b.N)); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// TestManyConnections holds 1000+ sessions open concurrently — every one a
// live TCP connection with its own server-side session — and runs the
// mixed load across them. Its real assertion is the race detector: CI runs
// this under -race to prove the per-connection goroutines, the drain
// bookkeeping, and the client pool are data-race free at scale.
func TestManyConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-connection soak skipped in -short mode")
	}
	db := newTestCluster(t)
	seedBenchTable(t, db, benchKeys)
	srv := startTestServer(t, db, Options{})
	addr := srv.Addr().String()

	const conns = 1024
	nc := driver.NewNetConnector(addr, driver.Config{MaxConns: conns, MaxIdle: conns})
	defer nc.Close()
	sqldb := sql.OpenDB(nc)
	defer sqldb.Close()
	sqldb.SetMaxOpenConns(conns)
	sqldb.SetMaxIdleConns(conns)

	// Pin every connection open at once: each holds a dedicated sql.Conn
	// until all 1024 are established, so the server really is carrying
	// 1024 live sessions simultaneously.
	var (
		wg      sync.WaitGroup
		barrier sync.WaitGroup
		errs    = make(chan error, conns)
	)
	barrier.Add(conns)
	wg.Add(conns)
	for i := 0; i < conns; i++ {
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(bg, 5*time.Minute)
			defer cancel()
			conn, err := sqldb.Conn(ctx)
			if err != nil {
				barrier.Done()
				errs <- fmt.Errorf("conn %d: %w", i, err)
				return
			}
			defer conn.Close()
			barrier.Done()
			barrier.Wait() // all sessions concurrently live from here
			var v string
			if err := conn.QueryRowContext(ctx,
				"SELECT v FROM bench WHERE k = ?", int64(i%benchKeys)).Scan(&v); err != nil {
				errs <- fmt.Errorf("conn %d get: %w", i, err)
				return
			}
			rows, err := conn.QueryContext(ctx,
				"SELECT k FROM bench WHERE k >= ? ORDER BY k LIMIT 20", int64(i%benchKeys))
			if err != nil {
				errs <- fmt.Errorf("conn %d scan: %w", i, err)
				return
			}
			for rows.Next() {
				var k int64
				if err := rows.Scan(&k); err != nil {
					errs <- err
					rows.Close()
					return
				}
			}
			if err := rows.Close(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Accepted < conns {
		t.Fatalf("server accepted %d connections, want >= %d", st.Accepted, conns)
	}
}
