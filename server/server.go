// Package server is GlobalDB's network edge: a TCP server that speaks the
// length-prefixed binary protocol in server/wire and maps every accepted
// connection onto one gsql session. The session owns the connection's
// transaction state and its DDL-aware plan cache, so prepared statements
// over the wire get exactly the replanning behavior in-process callers get.
//
// Results stream: a SELECT's response is a RowHeader frame, then row
// batches flushed as the prefetching batch cursor pipeline produces them
// (per batch, not per row), then a Done frame carrying the statement's
// per-layer scan counters. A client can send Cancel mid-stream; the server
// notices between batches, closes the cursor (stopping the scans
// mid-table), and answers with a Done marked Canceled.
//
// Shutdown drains gracefully: the listener closes first so new dials are
// refused, in-flight statements run to completion, idle connections close
// immediately, and only after the deadline passes are the stragglers'
// sockets force-closed. A panic inside one connection's statement is
// contained to that connection — it answers with an Error frame, closes,
// and the rest of the server keeps serving.
package server

import (
	"context"
	"errors"
	"net"
	"sync"

	"globaldb"
	"globaldb/internal/stats"
)

// DefaultBatchRows is how many rows the server packs into one RowBatch
// frame before flushing, absent an Options override.
const DefaultBatchRows = 128

// Options tunes a Server.
type Options struct {
	// Region is the home region for sessions whose handshake names none.
	// Empty falls back to the cluster's first region.
	Region string
	// BatchRows is the row-batch flush size; 0 means DefaultBatchRows.
	BatchRows int
}

// Server serves the wire protocol over TCP for one cluster.
type Server struct {
	db       *globaldb.DB
	opts     Options
	counters stats.ServerCounters

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	drainCh  chan struct{} // closed once Shutdown begins

	wg sync.WaitGroup // accept loop + connection goroutines
}

// New wires a server to an open cluster. Call Start or Serve to listen.
func New(db *globaldb.DB, opts Options) *Server {
	if opts.BatchRows <= 0 {
		opts.BatchRows = DefaultBatchRows
	}
	return &Server{
		db:      db,
		opts:    opts,
		conns:   make(map[net.Conn]struct{}),
		drainCh: make(chan struct{}),
	}
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// in the background. The listen address is available through Addr.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.lis = lis // visible to Addr before the accept loop spins up
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(lis)
	}()
	return nil
}

// Serve accepts connections on lis until Shutdown closes it. It returns
// nil on a drain-initiated stop and the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: already shut down")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			select {
			case <-s.drainCh:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.counters.ConnOpened()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(nc)
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
			s.counters.ConnClosed()
		}()
	}
}

// Addr returns the listen address, or nil before Start/Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Stats snapshots the server's connection and statement counters.
func (s *Server) Stats() stats.ServerSnapshot { return s.counters.Snapshot() }

// Shutdown drains the server: the listener closes (new dials are refused),
// idle connections close, in-flight statements finish and then their
// connections close. If ctx expires first, the remaining connections'
// sockets are force-closed; Shutdown still waits for their goroutines to
// unwind before returning ctx's error. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		if s.lis != nil {
			s.lis.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
