// Package server is GlobalDB's network edge: a TCP server that speaks the
// length-prefixed binary protocol in server/wire and maps every accepted
// connection onto one gsql session. The session owns the connection's
// transaction state and its DDL-aware plan cache, so prepared statements
// over the wire get exactly the replanning behavior in-process callers get.
//
// Results stream: a SELECT's response is a RowHeader frame, then row
// batches flushed as the prefetching batch cursor pipeline produces them
// (per batch, not per row), then a Done frame carrying the statement's
// per-layer scan counters. A client can send Cancel mid-stream; the server
// notices between batches, closes the cursor (stopping the scans
// mid-table), and answers with a Done marked Canceled.
//
// Shutdown drains gracefully: the listener closes first so new dials are
// refused, in-flight statements run to completion, idle connections close
// immediately, and only after the deadline passes are the stragglers'
// sockets force-closed. A panic inside one connection's statement is
// contained to that connection — it answers with an Error frame, closes,
// and the rest of the server keeps serving.
package server

import (
	"context"
	"errors"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"globaldb"
	"globaldb/internal/obs"
	"globaldb/internal/stats"
)

// DefaultBatchRows is how many rows the server packs into one RowBatch
// frame before flushing, absent an Options override.
const DefaultBatchRows = 128

// Options tunes a Server.
type Options struct {
	// Region is the home region for sessions whose handshake names none.
	// Empty falls back to the cluster's first region.
	Region string
	// BatchRows is the row-batch flush size; 0 means DefaultBatchRows.
	BatchRows int
	// SlowQueryThreshold enables the slow-query log: statements whose
	// server-side latency exceeds it are logged. Zero disables.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives one formatted line per slow statement. Nil
	// falls back to the standard logger.
	SlowQueryLog func(line string)
}

// stmtClasses are the statement-type labels the server's per-type latency
// histograms use. Statements whose leading keyword matches none map to
// "other"; wire-level operations (prepared execution resolves to its SQL's
// class) never add labels at runtime, so the histogram set is fixed.
var stmtClasses = []string{
	"select", "insert", "update", "delete",
	"create", "drop", "begin", "commit", "rollback", "explain", "other",
}

// classifySQL maps a statement to its histogram label by leading keyword.
func classifySQL(sql string) string {
	rest := strings.TrimSpace(sql)
	end := 0
	for end < len(rest) {
		c := rest[end]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z') {
			break
		}
		end++
	}
	kw := strings.ToLower(rest[:end])
	for _, class := range stmtClasses {
		if kw == class {
			return class
		}
	}
	return "other"
}

// Server serves the wire protocol over TCP for one cluster.
type Server struct {
	db       *globaldb.DB
	opts     Options
	reg      *obs.Registry
	counters *stats.ServerCounters
	stmtHist map[string]*obs.Histogram // per-statement-type latency, fixed key set
	inFlight *obs.Gauge                // statements currently executing
	slowLog  func(line string)

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	drainCh  chan struct{} // closed once Shutdown begins

	wg sync.WaitGroup // accept loop + connection goroutines
}

// New wires a server to an open cluster. Call Start or Serve to listen.
func New(db *globaldb.DB, opts Options) *Server {
	if opts.BatchRows <= 0 {
		opts.BatchRows = DefaultBatchRows
	}
	// Each server homes its metrics on its own registry so concurrent
	// servers (parallel tests, future multi-listener processes) never
	// share counts; cmd/globaldb-server exposes it via Metrics().
	reg := obs.NewRegistry()
	hists := make(map[string]*obs.Histogram, len(stmtClasses))
	for _, class := range stmtClasses {
		hists[class] = reg.Histogram(obs.LabeledName("server_statement_latency_seconds", "type", class))
	}
	slowLog := opts.SlowQueryLog
	if slowLog == nil {
		slowLog = func(line string) { log.Print(line) }
	}
	return &Server{
		db:       db,
		opts:     opts,
		reg:      reg,
		counters: stats.NewServerCounters(reg),
		stmtHist: hists,
		inFlight: reg.Gauge("server_statements_in_flight"),
		slowLog:  slowLog,
		conns:    make(map[net.Conn]struct{}),
		drainCh:  make(chan struct{}),
	}
}

// Metrics returns the server's metrics registry for exposition.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// observeStatement records one statement's server-side latency into the
// per-type histogram and fires the slow-query log when over threshold.
// It is called from a defer so panicking statements are observed too.
func (s *Server) observeStatement(class, sql string, d time.Duration) {
	h := s.stmtHist[class]
	if h == nil {
		h = s.stmtHist["other"]
	}
	h.Observe(d)
	if t := s.opts.SlowQueryThreshold; t > 0 && d > t {
		s.slowLog("slow query (" + d.Round(10*time.Microsecond).String() + " > " +
			t.String() + "): " + truncateSQL(sql))
	}
}

// truncateSQL bounds a logged statement to keep slow-query lines readable.
func truncateSQL(sql string) string {
	const max = 200
	sql = strings.TrimSpace(sql)
	if len(sql) > max {
		return sql[:max] + "…"
	}
	return sql
}

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// in the background. The listen address is available through Addr.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.lis = lis // visible to Addr before the accept loop spins up
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve(lis)
	}()
	return nil
}

// Serve accepts connections on lis until Shutdown closes it. It returns
// nil on a drain-initiated stop and the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: already shut down")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			select {
			case <-s.drainCh:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.counters.ConnOpened()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(nc)
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
			s.counters.ConnClosed()
		}()
	}
}

// Addr returns the listen address, or nil before Start/Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil
	}
	return s.lis.Addr()
}

// Stats snapshots the server's connection and statement counters.
func (s *Server) Stats() stats.ServerSnapshot { return s.counters.Snapshot() }

// Shutdown drains the server: the listener closes (new dials are refused),
// idle connections close, in-flight statements finish and then their
// connections close. If ctx expires first, the remaining connections'
// sockets are force-closed; Shutdown still waits for their goroutines to
// unwind before returning ctx's error. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
		if s.lis != nil {
			s.lis.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}
