package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"globaldb"
	"globaldb/gsql"
	"globaldb/server/wire"
)

var bg = context.Background()

// newTestCluster opens a fast single-region cluster.
func newTestCluster(t testing.TB) *globaldb.DB {
	t.Helper()
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 2
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

// startTestServer runs a server on a free port and shuts it down with the
// test.
func startTestServer(t testing.TB, db *globaldb.DB, opts Options) *Server {
	t.Helper()
	srv := New(db, opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(bg, 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// testClient is a raw wire-protocol client: it speaks frames directly so
// tests can pin the protocol itself, not the driver's view of it.
type testClient struct {
	t  testing.TB
	nc net.Conn
	rd *wire.Reader
	w  *bufio.Writer
}

func dialTest(t testing.TB, srv *Server) *testClient {
	t.Helper()
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &testClient{t: t, nc: nc, rd: wire.NewReader(nc), w: bufio.NewWriter(nc)}
}

func (c *testClient) send(m wire.Message) {
	c.t.Helper()
	if err := wire.WriteMessage(c.w, m); err != nil {
		c.t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *testClient) recv() wire.Message {
	c.t.Helper()
	m, err := c.rd.ReadMessage()
	if err != nil {
		c.t.Fatalf("recv: %v", err)
	}
	return m
}

// hello performs the handshake and requires it to succeed.
func (c *testClient) hello(region, staleness string) *wire.HelloOK {
	c.t.Helper()
	c.send(&wire.Hello{Version: wire.ProtocolVersion, Region: region, Staleness: staleness})
	m := c.recv()
	ok, good := m.(*wire.HelloOK)
	if !good {
		c.t.Fatalf("handshake answered %#v", m)
	}
	return ok
}

// query sends a Query and collects the whole response. The final message is
// the Done or the Error that ended the stream.
func (c *testClient) query(sql string, args ...any) (*wire.RowHeader, [][]any, wire.Message) {
	c.t.Helper()
	c.send(&wire.Query{SQL: sql, Args: args})
	return c.collect()
}

func (c *testClient) collect() (*wire.RowHeader, [][]any, wire.Message) {
	c.t.Helper()
	m := c.recv()
	hdr, ok := m.(*wire.RowHeader)
	if !ok {
		return nil, nil, m // refused before the header (Error frame)
	}
	var rows [][]any
	for {
		switch m := c.recv().(type) {
		case *wire.RowBatch:
			rows = append(rows, m.Rows...)
		case *wire.Done, *wire.Error:
			return hdr, rows, m
		default:
			c.t.Fatalf("unexpected %T mid-stream", m)
			return nil, nil, nil
		}
	}
}

// expectClosed requires the server to have closed the connection.
func (c *testClient) expectClosed() {
	c.t.Helper()
	c.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if m, err := c.rd.ReadMessage(); err == nil {
		c.t.Fatalf("connection still open, read %#v", m)
	}
}

// mustDone requires the response's final message to be a Done.
func (c *testClient) mustDone(m wire.Message) *wire.Done {
	c.t.Helper()
	done, ok := m.(*wire.Done)
	if !ok {
		c.t.Fatalf("final frame %#v, want Done", m)
	}
	return done
}

// TestServerQueryAndPrepared drives the protocol end to end over a real
// socket: handshake defaults, script execution, a streaming SELECT split
// across several row batches with scan counters in the trailer, prepared
// parse/bind/execute, and statement errors that leave the connection
// usable.
func TestServerQueryAndPrepared(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{BatchRows: 4})
	c := dialTest(t, srv)

	// Empty region in the handshake falls back to the cluster's first.
	ok := c.hello("", "")
	if ok.Region != db.Regions()[0] {
		t.Fatalf("handshake region %q, want %q", ok.Region, db.Regions()[0])
	}
	if ok.Mode == "" {
		t.Fatal("handshake reported no transaction mode")
	}

	// A multi-statement script goes through ExecScript.
	var script strings.Builder
	script.WriteString("CREATE TABLE kv (k BIGINT, v TEXT, PRIMARY KEY (k));\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&script, "INSERT INTO kv VALUES (%d, 'v%d');\n", i, i)
	}
	_, _, fin := c.query(script.String())
	c.mustDone(fin)

	// Streaming SELECT: 10 rows through BatchRows=4 means three batches,
	// and the Done trailer carries the scan's per-layer counters.
	hdr, rows, fin := c.query("SELECT k, v FROM kv ORDER BY k")
	if len(hdr.Columns) != 2 || hdr.Columns[0] != "k" || hdr.Columns[1] != "v" {
		t.Fatalf("columns %v", hdr.Columns)
	}
	if len(rows) != 10 {
		t.Fatalf("streamed %d rows, want 10", len(rows))
	}
	if rows[7][0] != int64(7) || rows[7][1] != "v7" {
		t.Fatalf("row 7 = %v", rows[7])
	}
	done := c.mustDone(fin)
	if done.Stats.StorageRows < 10 {
		t.Fatalf("Done.Stats.StorageRows = %d, want >= 10", done.Stats.StorageRows)
	}

	// Parameterized single statement.
	_, rows, fin = c.query("SELECT v FROM kv WHERE k = ?", int64(3))
	c.mustDone(fin)
	if len(rows) != 1 || rows[0][0] != "v3" {
		t.Fatalf("point get: %v", rows)
	}

	// Prepared statements: parse once, execute with fresh args, close.
	c.send(&wire.Parse{Name: "p1", SQL: "SELECT v FROM kv WHERE k = ?"})
	pok, ok2 := c.recv().(*wire.ParseOK)
	if !ok2 || pok.NumParams != 1 {
		t.Fatalf("ParseOK: %#v (ok=%v)", pok, ok2)
	}
	for k := int64(0); k < 3; k++ {
		c.send(&wire.Execute{Name: "p1", Args: []any{k}})
		_, rows, fin := c.collect()
		c.mustDone(fin)
		if len(rows) != 1 || rows[0][0] != fmt.Sprintf("v%d", k) {
			t.Fatalf("execute k=%d: %v", k, rows)
		}
	}
	c.send(&wire.CloseStmt{Name: "p1"})
	c.mustDone(c.recv())
	// Executing a closed statement is a statement error, not a dead
	// connection.
	c.send(&wire.Execute{Name: "p1", Args: []any{int64(0)}})
	_, _, fin = c.collect()
	if e, ok := fin.(*wire.Error); !ok || e.Code != "statement" {
		t.Fatalf("execute after close: %#v", fin)
	}

	// A failed statement leaves framing intact: the next request works.
	_, _, fin = c.query("SELECT * FROM nosuch")
	if e, ok := fin.(*wire.Error); !ok || e.Code != "statement" {
		t.Fatalf("bad query answered %#v", fin)
	}
	c.send(&wire.Ping{})
	if _, ok := c.recv().(*wire.Pong); !ok {
		t.Fatal("connection unusable after statement error")
	}

	// Transaction state rides in the Done trailer; Reset rolls it back.
	_, _, fin = c.query("BEGIN")
	if !c.mustDone(fin).InTxn {
		t.Fatal("BEGIN did not report InTxn")
	}
	_, _, fin = c.query("INSERT INTO kv VALUES (100, 'tx')")
	if !c.mustDone(fin).InTxn {
		t.Fatal("statement inside txn did not report InTxn")
	}
	c.send(&wire.Reset{})
	if c.mustDone(c.recv()).InTxn {
		t.Fatal("Reset left the transaction open")
	}
	_, rows, fin = c.query("SELECT v FROM kv WHERE k = ?", int64(100))
	c.mustDone(fin)
	if len(rows) != 0 {
		t.Fatalf("Reset did not roll back: %v", rows)
	}

	// The staleness handshake option applies to the whole session.
	c2 := dialTest(t, srv)
	c2.hello("", "any")
	_, rows, fin = c2.query("SHOW STALENESS")
	c2.mustDone(fin)
	if len(rows) != 1 || rows[0][0] != "ANY" {
		t.Fatalf("handshake staleness not applied: %v", rows)
	}

	st := srv.Stats()
	if st.Accepted < 2 || st.Statements == 0 || st.RowsStreamed < 10 {
		t.Fatalf("server counters: %+v", st)
	}
}

// TestServerHandshakeRejects pins the refusal paths: wrong protocol
// version, a first frame that is not Hello, and bad handshake options all
// answer with an Error frame and close the connection.
func TestServerHandshakeRejects(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{})

	cases := []struct {
		name string
		m    wire.Message
		code string
	}{
		{"version mismatch", &wire.Hello{Version: 99}, "protocol"},
		{"not hello", &wire.Ping{}, "protocol"},
		{"bad staleness", &wire.Hello{Version: wire.ProtocolVersion, Staleness: "bogus"}, "handshake"},
		{"bad region", &wire.Hello{Version: wire.ProtocolVersion, Region: "atlantis"}, "handshake"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := dialTest(t, srv)
			c.send(tc.m)
			e, ok := c.recv().(*wire.Error)
			if !ok || e.Code != tc.code {
				t.Fatalf("got %#v, want Error code %q", e, tc.code)
			}
			c.expectClosed()
		})
	}
}

// TestServerMalformedFrame sends bytes that are not a well-formed frame
// and requires a protocol Error plus connection close — never a panic, and
// never a silent hang.
func TestServerMalformedFrame(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{})

	send := func(t *testing.T, raw []byte) {
		c := dialTest(t, srv)
		c.hello("", "")
		if _, err := c.nc.Write(raw); err != nil {
			t.Fatal(err)
		}
		e, ok := c.recv().(*wire.Error)
		if !ok || e.Code != "protocol" {
			t.Fatalf("malformed frame answered %#v, want protocol Error", e)
		}
		c.expectClosed()
	}

	t.Run("oversized length", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], wire.MaxFrameSize+1)
		send(t, hdr[:])
	})
	t.Run("zero length", func(t *testing.T) {
		send(t, []byte{0, 0, 0, 0})
	})
	t.Run("unknown message type", func(t *testing.T) {
		send(t, []byte{0, 0, 0, 1, 0xEE})
	})
	t.Run("corrupt payload", func(t *testing.T) {
		// A complete Query frame whose payload is an unterminated uvarint:
		// framing is intact but the contents don't decode.
		send(t, []byte{0, 0, 0, 2, byte(wire.MsgQuery), 0xFF})
	})
}

// TestServerCancelMidStream cancels a large streaming SELECT partway
// through and requires the stream to end early with a Done marked
// Canceled — and the connection to stay usable for the next statement.
func TestServerCancelMidStream(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{BatchRows: 8})

	// The response must outsize anything the kernel can buffer (socket
	// send + receive windows autotune to a few MB each on loopback), so
	// the server is guaranteed to still be mid-stream — blocked on flow
	// control — when the Cancel arrives.
	const total = 2000
	seedBigTable(t, db, total, 8192)

	c := dialTest(t, srv)
	c.hello("", "")

	c.send(&wire.Query{SQL: "SELECT k, pad FROM big"})
	if _, ok := c.recv().(*wire.RowHeader); !ok {
		t.Fatal("no row header")
	}
	// Read one batch, then cancel.
	if _, ok := c.recv().(*wire.RowBatch); !ok {
		t.Fatal("no first batch")
	}
	c.send(&wire.Cancel{})
	got := int64(8)
	for {
		m := c.recv()
		if b, ok := m.(*wire.RowBatch); ok {
			got += int64(len(b.Rows))
			continue
		}
		done := c.mustDone(m)
		if !done.Canceled {
			t.Fatal("Done not marked Canceled")
		}
		break
	}
	if got >= total {
		t.Fatalf("cancel drained all %d rows", got)
	}
	if n := srv.Stats().Canceled; n != 1 {
		t.Fatalf("Canceled counter = %d, want 1", n)
	}

	// The connection survives: the next statement runs normally.
	_, rows, fin := c.query("SELECT COUNT(*) FROM big")
	c.mustDone(fin)
	if len(rows) != 1 || rows[0][0] != int64(total) {
		t.Fatalf("post-cancel COUNT(*): %v", rows)
	}
	t.Logf("canceled after %d of %d rows", got, total)
}

// TestServerPanicIsolation injects a panic into one connection's statement
// and requires the blast radius to be that connection alone: it gets an
// Error frame and closes, a sibling connection keeps working, and the
// panic counter ticks.
func TestServerPanicIsolation(t *testing.T) {
	db := newTestCluster(t)
	srv := startTestServer(t, db, Options{})

	testHookQuery = func(sql string) {
		if strings.Contains(sql, "PANIC_MARKER") {
			panic("injected planner bug")
		}
	}
	defer func() { testHookQuery = nil }()

	victim := dialTest(t, srv)
	victim.hello("", "")
	bystander := dialTest(t, srv)
	bystander.hello("", "")

	victim.send(&wire.Query{SQL: "SELECT PANIC_MARKER"})
	e, ok := victim.recv().(*wire.Error)
	if !ok || e.Code != "panic" {
		t.Fatalf("panicking statement answered %#v, want panic Error", e)
	}
	victim.expectClosed()

	// The sibling connection — and the server — are unharmed.
	bystander.send(&wire.Ping{})
	if _, ok := bystander.recv().(*wire.Pong); !ok {
		t.Fatal("bystander connection broken by sibling panic")
	}
	_, _, fin := bystander.query("SHOW STALENESS")
	bystander.mustDone(fin)
	if n := srv.Stats().Panics; n != 1 {
		t.Fatalf("Panics counter = %d, want 1", n)
	}

	// New connections still get served.
	fresh := dialTest(t, srv)
	fresh.hello("", "")
}

// seedBigTable creates table big (k BIGINT, pad TEXT) with n rows of
// padBytes-sized padding, through an in-process session.
func seedBigTable(t testing.TB, db *globaldb.DB, n, padBytes int) {
	t.Helper()
	sess, err := gsql.Connect(db, db.Regions()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(bg, "CREATE TABLE big (k BIGINT, pad TEXT, PRIMARY KEY (k))"); err != nil {
		t.Fatal(err)
	}
	ins, err := sess.Prepare(bg, "INSERT INTO big VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	// One transaction around the whole load: per-row auto-commit would pay
	// the commit latency n times over.
	if _, err := sess.Exec(bg, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", padBytes)
	for i := 0; i < n; i++ {
		if _, err := ins.Exec(bg, int64(i), pad); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Exec(bg, "COMMIT"); err != nil {
		t.Fatal(err)
	}
}
