package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"globaldb/gsql"
	"globaldb/server/wire"
)

// inMsg is one reader-goroutine delivery: a decoded message or the read
// error that ended the connection's input.
type inMsg struct {
	m   wire.Message
	err error
}

// serverConn is one accepted connection: a gsql session, the frame writer,
// and the reader goroutine's delivery channel. Splitting reads into their
// own goroutine is what lets the statement loop poll for a Cancel between
// row batches without putting read deadlines under the frame decoder.
type serverConn struct {
	srv   *Server
	nc    net.Conn
	w     *bufio.Writer
	in    chan inMsg
	done  chan struct{} // closed when the statement loop exits
	sess  *gsql.Session
	stmts map[string]*gsql.Stmt
}

// handle runs one connection to completion. A panic anywhere in the
// statement loop — a planner or executor bug — is contained here: the
// client gets a best-effort Error frame, this connection closes, and the
// server keeps serving its siblings.
func (s *Server) handle(nc net.Conn) {
	c := &serverConn{
		srv:   s,
		nc:    nc,
		w:     bufio.NewWriter(nc),
		in:    make(chan inMsg, 4),
		done:  make(chan struct{}),
		stmts: make(map[string]*gsql.Stmt),
	}
	defer nc.Close()
	defer close(c.done)
	defer func() {
		if p := recover(); p != nil {
			s.counters.ObservePanic()
			_ = wire.WriteMessage(nc, &wire.Error{Code: "panic", Msg: fmt.Sprint(p)})
		}
	}()
	go c.readLoop()
	c.serve()
}

// readLoop decodes frames off the socket and hands them to the statement
// loop. It exits on the first read error (delivered to the loop) or when
// the statement loop is gone.
func (c *serverConn) readLoop() {
	rd := wire.NewReader(c.nc)
	for {
		m, err := rd.ReadMessage()
		select {
		case c.in <- inMsg{m, err}:
		case <-c.done:
			return
		}
		if err != nil {
			return
		}
	}
}

// next blocks for the client's next message. Draining counts as
// end-of-input so idle connections close promptly on Shutdown; a
// connection mid-statement never calls next, so in-flight work finishes.
func (c *serverConn) next() (wire.Message, bool) {
	select {
	case im := <-c.in:
		if im.err != nil {
			// A malformed frame (vs. a plain disconnect) gets a best-effort
			// protocol Error so the peer knows framing sync is lost.
			if errors.Is(im.err, wire.ErrProtocol) {
				_ = c.finish(&wire.Error{Code: "protocol", Msg: im.err.Error()})
			}
			return nil, false
		}
		return im.m, true
	case <-c.srv.drainCh:
		return nil, false
	}
}

// serve runs the handshake and then the statement loop.
func (c *serverConn) serve() {
	if !c.handshake() {
		return
	}
	defer func() {
		// Abandoned connection: roll back its open transaction so its
		// writes don't linger as intents.
		if c.sess.InTxn() {
			_, _ = c.sess.ExecStmt(context.Background(), &gsql.Rollback{})
		}
	}()
	for {
		m, ok := c.next()
		if !ok {
			return
		}
		ctx := context.Background()
		var err error
		switch m := m.(type) {
		case *wire.Query:
			err = c.observeStatement(m.SQL, func() error { return c.runQuery(ctx, m) })
		case *wire.Parse:
			err = c.observeStatement(m.SQL, func() error { return c.runParse(ctx, m) })
		case *wire.Execute:
			sql := ""
			if st, ok := c.stmts[m.Name]; ok {
				sql = st.Text()
			}
			err = c.observeStatement(sql, func() error { return c.runExecute(ctx, m) })
		case *wire.Stats:
			err = c.runStats()
		case *wire.CloseStmt:
			if st, ok := c.stmts[m.Name]; ok {
				st.Close()
				delete(c.stmts, m.Name)
			}
			err = c.finish(&wire.Done{InTxn: c.sess.InTxn()})
		case *wire.Reset:
			if c.sess.InTxn() {
				if _, rerr := c.sess.ExecStmt(ctx, &gsql.Rollback{}); rerr != nil {
					err = c.statementError(rerr)
					break
				}
			}
			err = c.finish(&wire.Done{})
		case *wire.Ping:
			err = c.finish(&wire.Pong{})
		case *wire.Cancel:
			// A cancel that raced the end of its stream: the statement
			// already answered, nothing is in flight. Ignore it.
		default:
			_ = c.protocolError(fmt.Sprintf("unexpected %v", m.Type()))
			return
		}
		if err != nil {
			return
		}
	}
}

// handshake validates the Hello and opens the connection's session.
func (c *serverConn) handshake() bool {
	m, ok := c.next()
	if !ok {
		return false
	}
	hello, ok := m.(*wire.Hello)
	if !ok {
		_ = c.protocolError(fmt.Sprintf("expected Hello, got %v", m.Type()))
		return false
	}
	if hello.Version != wire.ProtocolVersion {
		_ = c.protocolError(fmt.Sprintf("unsupported protocol version %d (server speaks %d)",
			hello.Version, wire.ProtocolVersion))
		return false
	}
	region := hello.Region
	if region == "" {
		region = c.srv.opts.Region
	}
	if region == "" {
		regions := c.srv.db.Regions()
		if len(regions) == 0 {
			_ = c.handshakeError(errors.New("cluster has no regions"))
			return false
		}
		region = regions[0]
	}
	sess, err := gsql.Connect(c.srv.db, region)
	if err != nil {
		_ = c.handshakeError(err)
		return false
	}
	c.sess = sess
	if set, err := stalenessStmt(hello.Staleness); err != nil {
		_ = c.handshakeError(err)
		return false
	} else if set != nil {
		if _, err := sess.ExecStmt(context.Background(), set); err != nil {
			_ = c.handshakeError(err)
			return false
		}
	}
	return c.finish(&wire.HelloOK{Region: region, Mode: c.srv.db.Mode().String()}) == nil
}

// stalenessStmt translates the handshake's staleness option — the same
// grammar the driver DSN uses — into a SET STALENESS statement, or nil for
// the primary-read default.
func stalenessStmt(v string) (*gsql.SetStaleness, error) {
	switch strings.ToLower(v) {
	case "", "none":
		return nil, nil
	case "any":
		return &gsql.SetStaleness{Any: true}, nil
	default:
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad staleness %q", v)
		}
		return &gsql.SetStaleness{Bound: d}, nil
	}
}

// observeStatement brackets one statement's execution with the server's
// latency and in-flight instrumentation. The bookkeeping runs from a
// defer — without recovering — so a statement that panics mid-execution
// still observes its latency, decrements the in-flight gauge, and counts
// toward the statement total (the handlers' own ObserveStatement call
// never ran) before handle()'s recover answers the client; the server's
// counters stay balanced across contained panics.
func (c *serverConn) observeStatement(sql string, fn func() error) error {
	class := classifySQL(sql)
	c.srv.inFlight.Inc()
	start := time.Now()
	completed := false
	defer func() {
		c.srv.inFlight.Dec()
		c.srv.observeStatement(class, sql, time.Since(start))
		if !completed {
			c.srv.counters.ObserveStatement(0)
		}
	}()
	err := fn()
	completed = true
	return err
}

// runStats answers the admin Stats frame with a snapshot of the server's
// counters and per-statement-type latency histograms.
func (c *serverConn) runStats() error {
	snap := c.srv.counters.Snapshot()
	res := &wire.StatsResult{
		Accepted:     snap.Accepted,
		Active:       snap.Active,
		Statements:   snap.Statements,
		RowsStreamed: snap.RowsStreamed,
		Canceled:     snap.Canceled,
		Panics:       snap.Panics,
		InFlight:     c.srv.inFlight.Value(),
	}
	for _, class := range stmtClasses {
		h := c.srv.stmtHist[class].Snapshot()
		if h.Count == 0 {
			continue
		}
		res.Latencies = append(res.Latencies, wire.StmtLatency{
			Type:     class,
			Count:    h.Count,
			SumNanos: h.SumNanos,
			P50Nanos: int64(h.P50()),
			P95Nanos: int64(h.P95()),
			P99Nanos: int64(h.P99()),
		})
	}
	return c.finish(res)
}

// testHookQuery, when non-nil, observes every Query statement before it
// runs. Tests use it to inject panics and prove per-connection isolation.
var testHookQuery func(sql string)

// runQuery answers a Query message: a streaming response for a single
// SELECT, a materialized one for other statements and multi-statement
// scripts (which take no arguments, mirroring ExecScript).
func (c *serverConn) runQuery(ctx context.Context, q *wire.Query) error {
	if testHookQuery != nil {
		testHookQuery(q.SQL)
	}
	if len(q.Args) == 0 {
		stmts, err := gsql.ParseAll(q.SQL)
		if err != nil {
			return c.statementError(err)
		}
		if len(stmts) != 1 {
			res, err := c.sess.ExecScript(ctx, q.SQL)
			if err != nil {
				return c.statementError(err)
			}
			return c.resultResponse(res)
		}
	}
	rows, err := c.sess.Query(ctx, q.SQL, q.Args...)
	if errors.Is(err, gsql.ErrNotSelect) {
		res, err := c.sess.Exec(ctx, q.SQL, q.Args...)
		if err != nil {
			return c.statementError(err)
		}
		return c.resultResponse(res)
	}
	if err != nil {
		return c.statementError(err)
	}
	return c.streamResponse(rows)
}

// runParse prepares a named statement. Re-parsing a taken name replaces
// the previous statement, like PostgreSQL's unnamed-statement behavior
// generalized.
func (c *serverConn) runParse(ctx context.Context, p *wire.Parse) error {
	st, err := c.sess.Prepare(ctx, p.SQL)
	if err != nil {
		return c.statementError(err)
	}
	if old, ok := c.stmts[p.Name]; ok {
		old.Close()
	}
	c.stmts[p.Name] = st
	return c.finish(&wire.ParseOK{NumParams: st.NumParams()})
}

// runExecute runs a previously parsed statement.
func (c *serverConn) runExecute(ctx context.Context, e *wire.Execute) error {
	st, ok := c.stmts[e.Name]
	if !ok {
		return c.statementError(fmt.Errorf("no prepared statement %q", e.Name))
	}
	rows, err := st.Query(ctx, e.Args...)
	if errors.Is(err, gsql.ErrNotSelect) {
		res, err := st.Exec(ctx, e.Args...)
		if err != nil {
			return c.statementError(err)
		}
		return c.resultResponse(res)
	}
	if err != nil {
		return c.statementError(err)
	}
	return c.streamResponse(rows)
}

// streamResponse ships a streaming result: header, row batches flushed as
// the pipeline produces them, Done with the settled scan counters. Between
// batches it polls for a client Cancel; on one it closes the cursor —
// stopping the scans mid-table — and marks the Done frame Canceled.
func (c *serverConn) streamResponse(rows *gsql.Rows) error {
	if err := c.write(&wire.RowHeader{Columns: rows.Columns(), OnReplicas: rows.OnReplicas()}); err != nil {
		rows.Close()
		return err
	}
	var sent int64
	batch := make([][]any, 0, c.srv.opts.BatchRows)
	canceled := false
	for !canceled && rows.Next() {
		batch = append(batch, rows.Row())
		if len(batch) < c.srv.opts.BatchRows {
			continue
		}
		sent += int64(len(batch))
		if err := c.flushBatch(batch); err != nil {
			rows.Close()
			return err
		}
		batch = batch[:0]
		select {
		case im := <-c.in:
			if im.err != nil {
				rows.Close()
				return im.err
			}
			if _, ok := im.m.(*wire.Cancel); !ok {
				rows.Close()
				return c.protocolError(fmt.Sprintf("unexpected %v mid-stream", im.m.Type()))
			}
			canceled = true
		default:
		}
	}
	streamErr := rows.Err()
	closeErr := rows.Close()
	c.srv.counters.ObserveStatement(sent + int64(len(batch)))
	if canceled {
		c.srv.counters.ObserveCancel()
		return c.finish(&wire.Done{InTxn: c.sess.InTxn(), Canceled: true, Stats: rows.ScanStats()})
	}
	if streamErr == nil {
		streamErr = closeErr
	}
	if streamErr != nil {
		// Mid-stream failure: the Error frame replaces Done, the already
		// shipped batches are void, and the connection stays usable.
		return c.finish(&wire.Error{Code: "statement", Msg: streamErr.Error()})
	}
	if len(batch) > 0 {
		if err := c.write(&wire.RowBatch{Rows: batch}); err != nil {
			return err
		}
	}
	return c.finish(&wire.Done{InTxn: c.sess.InTxn(), Stats: rows.ScanStats()})
}

// resultResponse ships an already-materialized result (writes, DDL, SHOW,
// EXPLAIN, scripts) in the same header/batches/Done shape.
func (c *serverConn) resultResponse(res *gsql.Result) error {
	if err := c.write(&wire.RowHeader{Columns: res.Columns, OnReplicas: res.OnReplicas}); err != nil {
		return err
	}
	for start := 0; start < len(res.Rows); start += c.srv.opts.BatchRows {
		end := start + c.srv.opts.BatchRows
		if end > len(res.Rows) {
			end = len(res.Rows)
		}
		if err := c.write(&wire.RowBatch{Rows: res.Rows[start:end]}); err != nil {
			return err
		}
	}
	c.srv.counters.ObserveStatement(int64(len(res.Rows)))
	return c.finish(&wire.Done{
		Affected: int64(res.Affected), Msg: res.Msg,
		InTxn: c.sess.InTxn(), Stats: res.Scan,
	})
}

// statementError answers a failed statement. The connection stays usable:
// framing is intact, only this statement failed.
func (c *serverConn) statementError(err error) error {
	c.srv.counters.ObserveStatement(0)
	return c.finish(&wire.Error{Code: "statement", Msg: err.Error()})
}

// handshakeError refuses a connection during handshake.
func (c *serverConn) handshakeError(err error) error {
	ferr := c.finish(&wire.Error{Code: "handshake", Msg: err.Error()})
	if ferr == nil {
		ferr = errors.New("handshake refused")
	}
	return ferr
}

// protocolError reports lost framing sync; the caller closes the
// connection after it.
func (c *serverConn) protocolError(msg string) error {
	_ = c.finish(&wire.Error{Code: "protocol", Msg: msg})
	return fmt.Errorf("%w: %s", wire.ErrProtocol, msg)
}

// write frames one message into the buffered writer.
func (c *serverConn) write(m wire.Message) error { return wire.WriteMessage(c.w, m) }

// flushBatch ships one row batch immediately so the client streams.
func (c *serverConn) flushBatch(rows [][]any) error {
	if err := c.write(&wire.RowBatch{Rows: rows}); err != nil {
		return err
	}
	return c.w.Flush()
}

// finish writes a response's final frame and flushes.
func (c *serverConn) finish(m wire.Message) error {
	if err := c.write(m); err != nil {
		return err
	}
	return c.w.Flush()
}
