package globaldb

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"globaldb/internal/ts"
)

var bg = context.Background()

func fastCfg() Config {
	cfg := ThreeCity()
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	return cfg
}

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func accountsSchema() *Schema {
	return &Schema{
		Name: "accounts",
		Columns: []Column{
			{Name: "id", Kind: Int64},
			{Name: "owner", Kind: String},
			{Name: "balance", Kind: Float64},
		},
		PK: []int{0},
		Indexes: []Index{
			{Name: "accounts_owner", Cols: []int{0, 1}},
		},
	}
}

func ordersSchema() *Schema {
	return &Schema{
		Name: "orders",
		Columns: []Column{
			{Name: "w_id", Kind: Int64},
			{Name: "o_id", Kind: Int64},
			{Name: "item", Kind: String},
		},
		PK: []int{0, 1},
	}
}

func TestOpenAndConnect(t *testing.T) {
	db := openDB(t)
	if got := len(db.Regions()); got != 3 {
		t.Fatalf("regions = %d", got)
	}
	if db.Mode() != ts.ModeGClock {
		t.Fatalf("mode = %v", db.Mode())
	}
	if _, err := db.Connect("mars"); err == nil {
		t.Fatal("unknown region must fail")
	}
	s, err := db.Connect("xian")
	if err != nil || s.Region() != "xian" {
		t.Fatalf("connect: %v %v", s, err)
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")

	tx, err := sess.Begin(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(bg, "accounts", Row{int64(1), "alice", 100.0}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}

	tx2, _ := sess.Begin(bg)
	row, found, err := tx2.Get(bg, "accounts", []any{int64(1)})
	if err != nil || !found {
		t.Fatalf("get: %v %v", found, err)
	}
	if row[1] != "alice" || row[2] != 100.0 {
		t.Fatalf("row = %v", row)
	}
	row[2] = 175.5
	if err := tx2.Update(bg, "accounts", row); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(bg); err != nil {
		t.Fatal(err)
	}

	tx3, _ := sess.Begin(bg)
	row, _, _ = tx3.Get(bg, "accounts", []any{int64(1)})
	if row[2] != 175.5 {
		t.Fatalf("after update: %v", row)
	}
	if err := tx3.Delete(bg, "accounts", []any{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(bg); err != nil {
		t.Fatal(err)
	}

	tx4, _ := sess.Begin(bg)
	if _, found, _ := tx4.Get(bg, "accounts", []any{int64(1)}); found {
		t.Fatal("deleted row visible")
	}
	if err := tx4.Delete(bg, "accounts", []any{int64(1)}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	tx4.Abort(bg)
}

func TestScanPKPrefix(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, ordersSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("langzhong")
	tx, _ := sess.Begin(bg)
	for w := int64(1); w <= 2; w++ {
		for o := int64(1); o <= 5; o++ {
			if err := tx.Insert(bg, "orders", Row{w, o, fmt.Sprintf("item-%d-%d", w, o)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}

	tx2, _ := sess.Begin(bg)
	rows, err := tx2.ScanPK(bg, "orders", []any{int64(1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("scan w=1: %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0] != int64(1) || r[1] != int64(i+1) {
			t.Fatalf("row %d out of order: %v", i, r)
		}
	}
	// Limited scan.
	rows, _ = tx2.ScanPK(bg, "orders", []any{int64(2)}, 3)
	if len(rows) != 3 {
		t.Fatalf("limited scan: %d rows", len(rows))
	}
	// Prefix without the distribution column is rejected.
	if _, err := tx2.ScanPK(bg, "orders", nil, 0); err == nil {
		t.Fatal("empty prefix must fail")
	}
	tx2.Commit(bg)
}

func TestScanIndex(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	tx.Insert(bg, "accounts", Row{int64(10), "bob", 5.0})
	tx.Insert(bg, "accounts", Row{int64(11), "bob", 6.0})
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	tx2, _ := sess.Begin(bg)
	rows, err := tx2.ScanIndex(bg, "accounts", "accounts_owner", []any{int64(10), "bob"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(10) {
		t.Fatalf("index scan: %v", rows)
	}
	// Unknown index.
	if _, err := tx2.ScanIndex(bg, "accounts", "nope", []any{int64(10)}, 0); err == nil {
		t.Fatal("unknown index must fail")
	}
	tx2.Commit(bg)
}

func TestReadOnlyQueryOnReplicas(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	tx.Insert(bg, "accounts", Row{int64(5), "eve", 42.0})
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}
	// Wait for the RCP to pass both the DDL and the commit.
	deadline := time.Now().Add(10 * time.Second)
	for db.Cluster().Collector.RCP() < tx.CommitTS() {
		if time.Now().After(deadline) {
			t.Fatalf("RCP stuck at %v", db.Cluster().Collector.RCP())
		}
		time.Sleep(2 * time.Millisecond)
	}
	q, err := sess.ReadOnly(bg, AnyStaleness, "accounts")
	if err != nil {
		t.Fatal(err)
	}
	if !q.OnReplicas() {
		t.Fatal("query must be served from replicas")
	}
	row, found, err := q.Get(bg, "accounts", []any{int64(5)})
	if err != nil || !found || row[1] != "eve" {
		t.Fatalf("replica get: %v %v %v", row, found, err)
	}
	rows, err := q.ScanPK(bg, "accounts", []any{int64(5)}, 0)
	if err != nil || len(rows) != 1 {
		t.Fatalf("replica scan: %v %v", rows, err)
	}
	// Unknown table in the gate list.
	if _, err := sess.ReadOnly(bg, AnyStaleness, "ghosts"); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestTransitionsViaPublicAPI(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("dongguan")
	write := func(id int64) {
		t.Helper()
		tx, err := sess.Begin(bg)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert(bg, "accounts", Row{id, "t", 1.0}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(bg); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	if err := db.TransitionToGTM(bg); err != nil {
		t.Fatal(err)
	}
	if db.Mode() != ts.ModeGTM {
		t.Fatalf("mode = %v", db.Mode())
	}
	write(2)
	if err := db.TransitionToGClock(bg); err != nil {
		t.Fatal(err)
	}
	write(3)
	// All three rows visible.
	tx, _ := sess.Begin(bg)
	for id := int64(1); id <= 3; id++ {
		if _, found, err := tx.Get(bg, "accounts", []any{id}); err != nil || !found {
			t.Fatalf("row %d after transitions: %v %v", id, found, err)
		}
	}
	tx.Commit(bg)
}

func TestDropTable(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable(bg, "accounts"); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")
	tx, _ := sess.Begin(bg)
	if err := tx.Insert(bg, "accounts", Row{int64(1), "x", 1.0}); err == nil {
		t.Fatal("insert into dropped table must fail")
	}
	tx.Abort(bg)
	if err := db.DropTable(bg, "accounts"); err == nil {
		t.Fatal("double drop must fail")
	}
}

func TestMultiShardTransactionAtomicity(t *testing.T) {
	db := openDB(t)
	if err := db.CreateTable(bg, accountsSchema()); err != nil {
		t.Fatal(err)
	}
	sess, _ := db.Connect("xian")
	// Find two ids on different shards.
	var a, b int64 = 1, 2
	for db.Cluster().ShardOf(a) == db.Cluster().ShardOf(b) {
		b++
	}
	tx, _ := sess.Begin(bg)
	tx.Insert(bg, "accounts", Row{a, "a", 50.0})
	tx.Insert(bg, "accounts", Row{b, "b", 50.0})
	if err := tx.Commit(bg); err != nil {
		t.Fatal(err)
	}

	// Transfer between them atomically (2PC under the hood).
	tx2, _ := sess.Begin(bg)
	ra, _, _ := tx2.Get(bg, "accounts", []any{a})
	rb, _, _ := tx2.Get(bg, "accounts", []any{b})
	ra[2] = ra[2].(float64) - 10
	rb[2] = rb[2].(float64) + 10
	tx2.Update(bg, "accounts", ra)
	tx2.Update(bg, "accounts", rb)
	if err := tx2.Commit(bg); err != nil {
		t.Fatal(err)
	}

	tx3, _ := sess.Begin(bg)
	ra, _, _ = tx3.Get(bg, "accounts", []any{a})
	rb, _, _ = tx3.Get(bg, "accounts", []any{b})
	if ra[2].(float64)+rb[2].(float64) != 100.0 {
		t.Fatalf("sum = %v", ra[2].(float64)+rb[2].(float64))
	}
	tx3.Commit(bg)
}
