package globaldb_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"globaldb"
	"globaldb/gsql"
)

// allocBudgetRows is the table size for the alloc-budget gate. Large
// enough that a per-row allocation regression on the batch path dominates
// the fixed per-query cost, small enough to keep the gate fast.
const allocBudgetRows = 400

// allocBudgetMax is the hard ceiling on allocations for one warm filtered
// full-table scan over allocBudgetRows rows with the predicate pushed to
// the data nodes. Measured ~1.0k after the batch-native refactor (decode
// once per page into an arena, selection-vector filtering, slab-per-batch
// CN decode); the pre-batch row-at-a-time pipeline measured ~3.3k. The
// ceiling sits well under the old pipeline's cost with ~80% headroom over
// the measured value for Go-version drift, so reintroducing even a couple
// of per-row allocations on the hot path (+400/+800 here) fails this test
// long before it reaches benchmarks.
const allocBudgetMax = 1800

// TestAllocBudget gates the warm filtered-scan hot path on a hard
// allocation budget. The query is executed once to warm the plan cache and
// arenas, then sampled several times with testing.AllocsPerRun; the
// minimum sample is compared against the budget (minimum, not mean,
// because cluster background goroutines — replication shippers,
// heartbeats — also allocate and can inflate individual samples).
func TestAllocBudget(t *testing.T) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 2
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := gsql.Connect(db, cfg.Regions[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE items (
		w_id BIGINT, i_id BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id)
	) SHARD BY w_id`); err != nil {
		t.Fatal(err)
	}
	perWarehouse := allocBudgetRows / 4
	for w := 1; w <= 4; w++ {
		var vals []string
		for i := 1; i <= perWarehouse; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d, 't%d')", w, i, (i*7)%100, i%5))
		}
		if _, err := s.Exec(ctx, "INSERT INTO items VALUES "+strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
	}

	const query = "SELECT * FROM items WHERE qty >= 90"
	run := func() {
		res, err := s.Exec(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != allocBudgetRows/10 {
			t.Fatalf("rows = %d, want %d", len(res.Rows), allocBudgetRows/10)
		}
	}
	run() // warm the plan cache, cursors and arenas

	best := float64(1 << 60)
	for i := 0; i < 5; i++ {
		if n := testing.AllocsPerRun(1, run); n < best {
			best = n
		}
	}
	t.Logf("warm filtered scan: %.0f allocs/op (budget %d)", best, allocBudgetMax)
	if best > allocBudgetMax {
		t.Fatalf("warm filtered-scan path allocated %.0f times, budget is %d — a batch-path regression reintroduced per-row allocations", best, allocBudgetMax)
	}
}
