package globaldb_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"globaldb"
	"globaldb/gsql"
)

// allocBudgetRows is the table size for the alloc-budget gate. Large
// enough that a per-row allocation regression on the batch path dominates
// the fixed per-query cost, small enough to keep the gate fast.
const allocBudgetRows = 400

// allocBudgetMax is the hard ceiling on allocations for one warm filtered
// full-table scan over allocBudgetRows rows with the predicate pushed to
// the data nodes. Measured ~1.0k after the batch-native refactor (decode
// once per page into an arena, selection-vector filtering, slab-per-batch
// CN decode); the pre-batch row-at-a-time pipeline measured ~3.3k. The
// ceiling sits well under the old pipeline's cost with ~80% headroom over
// the measured value for Go-version drift, so reintroducing even a couple
// of per-row allocations on the hot path (+400/+800 here) fails this test
// long before it reaches benchmarks.
const allocBudgetMax = 1800

// TestAllocBudget gates the warm filtered-scan hot path on a hard
// allocation budget. The query is executed once to warm the plan cache and
// arenas, then sampled several times with testing.AllocsPerRun; the
// minimum sample is compared against the budget (minimum, not mean,
// because cluster background goroutines — replication shippers,
// heartbeats — also allocate and can inflate individual samples).
func TestAllocBudget(t *testing.T) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 2
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := gsql.Connect(db, cfg.Regions[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE items (
		w_id BIGINT, i_id BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id)
	) SHARD BY w_id`); err != nil {
		t.Fatal(err)
	}
	perWarehouse := allocBudgetRows / 4
	for w := 1; w <= 4; w++ {
		var vals []string
		for i := 1; i <= perWarehouse; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d, 't%d')", w, i, (i*7)%100, i%5))
		}
		if _, err := s.Exec(ctx, "INSERT INTO items VALUES "+strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
	}

	const query = "SELECT * FROM items WHERE qty >= 90"
	run := func() {
		res, err := s.Exec(ctx, query)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != allocBudgetRows/10 {
			t.Fatalf("rows = %d, want %d", len(res.Rows), allocBudgetRows/10)
		}
	}
	run() // warm the plan cache, cursors and arenas

	best := float64(1 << 60)
	for i := 0; i < 5; i++ {
		if n := testing.AllocsPerRun(1, run); n < best {
			best = n
		}
	}
	t.Logf("warm filtered scan: %.0f allocs/op (budget %d)", best, allocBudgetMax)
	if best > allocBudgetMax {
		t.Fatalf("warm filtered-scan path allocated %.0f times, budget is %d — a batch-path regression reintroduced per-row allocations", best, allocBudgetMax)
	}
}

// Hard ceilings on the warm join paths over allocBudgetRows outer rows.
// Measured after the join engine and needed-columns decode landed: hash
// ~250 (build the 4-row inner side once, probe per outer batch), lookup
// ~370 (DN-side joined rows, decoded with outer-segment memoization),
// nested loop ~700 (per-outer-row inner lookups; it was several times
// that before this PR, when every scanned row decoded and boxed all of
// its columns). Budgets carry ~100% headroom over the measured values for
// Go-version drift, and the hash gate additionally enforces the join
// engine's headline claim: at least a 2x reduction against the same
// query's nested loop, measured in the same process.
const (
	allocBudgetJoinHashMax   = 500
	allocBudgetJoinLookupMax = 800
)

// TestAllocBudgetJoin gates the warm distributed-join hot paths on hard
// allocation budgets, the join-engine extension of TestAllocBudget: the
// same filtered outer scan joined to its warehouse row, sampled per
// strategy via SET JOIN.
func TestAllocBudgetJoin(t *testing.T) {
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 2
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := gsql.Connect(db, cfg.Regions[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Exec(ctx, `CREATE TABLE items (
		w_id BIGINT, i_id BIGINT, qty BIGINT, tag TEXT,
		PRIMARY KEY (w_id, i_id)
	) SHARD BY w_id`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, `CREATE TABLE warehouses (
		w_id BIGINT, name TEXT, PRIMARY KEY (w_id)
	) SHARD BY w_id`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx,
		"INSERT INTO warehouses VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')"); err != nil {
		t.Fatal(err)
	}
	perWarehouse := allocBudgetRows / 4
	for w := 1; w <= 4; w++ {
		var vals []string
		for i := 1; i <= perWarehouse; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d, 't%d')", w, i, (i*7)%100, i%5))
		}
		if _, err := s.Exec(ctx, "INSERT INTO items VALUES "+strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
	}

	const query = "SELECT i.i_id, w.name FROM items i JOIN warehouses w ON w.w_id = i.w_id WHERE i.qty >= 90"
	measure := func(mode, wantStrategy string) float64 {
		t.Helper()
		if _, err := s.Exec(ctx, "SET JOIN = "+mode); err != nil {
			t.Fatal(err)
		}
		run := func() {
			res, err := s.Exec(ctx, query)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != allocBudgetRows/10 {
				t.Fatalf("%s: rows = %d, want %d", mode, len(res.Rows), allocBudgetRows/10)
			}
			if res.JoinStrategy != wantStrategy {
				t.Fatalf("%s ran %q, want %q", mode, res.JoinStrategy, wantStrategy)
			}
		}
		run() // warm the plan cache, cursors, arenas and hash build path
		best := float64(1 << 60)
		for i := 0; i < 5; i++ {
			if n := testing.AllocsPerRun(1, run); n < best {
				best = n
			}
		}
		return best
	}

	hash := measure("HASH", "hash")
	lookup := measure("LOOKUP", "lookup-pushdown")
	nestLoop := measure("NESTLOOP", "nested-loop")
	t.Logf("warm join: hash=%.0f (budget %d), lookup=%.0f (budget %d), nested-loop=%.0f allocs/op",
		hash, allocBudgetJoinHashMax, lookup, allocBudgetJoinLookupMax, nestLoop)
	if hash > allocBudgetJoinHashMax {
		t.Fatalf("warm hash-join path allocated %.0f times, budget is %d", hash, allocBudgetJoinHashMax)
	}
	if lookup > allocBudgetJoinLookupMax {
		t.Fatalf("warm lookup-join path allocated %.0f times, budget is %d", lookup, allocBudgetJoinLookupMax)
	}
	if 2*hash > nestLoop {
		t.Fatalf("hash join allocated %.0f times vs nested loop's %.0f — the >=2x reduction claim no longer holds", hash, nestLoop)
	}
}
