// Ablation benchmarks for the design choices DESIGN.md calls out: the
// GClock commit wait (error-bound cost), the RCP heartbeat interval
// (freshness vs. overhead), and replica-read routing versus primary reads.
// These are not paper figures; they quantify why each mechanism is built
// the way it is.
package globaldb_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"globaldb"
	"globaldb/internal/clock"
	"globaldb/internal/ts"
)

func ablationConfig() globaldb.Config {
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	return cfg
}

func ablationSchema() *globaldb.Schema {
	return &globaldb.Schema{
		Name: "kv",
		Columns: []globaldb.Column{
			{Name: "k", Kind: globaldb.Int64},
			{Name: "v", Kind: globaldb.String},
		},
		PK: []int{0},
	}
}

// BenchmarkAblationCommitWaitErrorBound measures single-shard commit
// latency as the clock error bound grows (Terr = Tsync + Tdrift, Eq. 1).
// The commit wait is proportional to Terr: precise clocks are what make
// GClock commits cheap.
func BenchmarkAblationCommitWaitErrorBound(b *testing.B) {
	ctx := context.Background()
	for _, syncRTT := range []time.Duration{60 * time.Microsecond, 1 * time.Millisecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("Tsync=%v", syncRTT), func(b *testing.B) {
			cfg := ablationConfig()
			cfg.Clock = clock.NodeConfig{
				SyncRTT:      syncRTT,
				MaxDriftPPM:  200,
				SyncInterval: time.Millisecond,
			}
			db, err := globaldb.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.CreateTable(ctx, ablationSchema()); err != nil {
				b.Fatal(err)
			}
			sess, err := db.Connect("xian")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				tx, err := sess.Begin(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if err := tx.Insert(ctx, "kv", globaldb.Row{int64(i), "v"}); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(time.Since(start).Microseconds())/float64(b.N), "µs/commit")
		})
	}
}

// BenchmarkAblationGTMvsGClockCommit compares commit cost under
// centralized (GTM) and decentralized (GClock) transaction management on
// the three-city cluster, from a CN that is remote from the GTM — the
// core of the paper's Sec. III argument.
func BenchmarkAblationGTMvsGClockCommit(b *testing.B) {
	ctx := context.Background()
	for _, mode := range []ts.Mode{ts.ModeGTM, ts.ModeGClock} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := ablationConfig()
			cfg.Mode = mode
			db, err := globaldb.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.CreateTable(ctx, ablationSchema()); err != nil {
				b.Fatal(err)
			}
			// Dongguan is the farthest region from the GTM in Langzhong.
			sess, err := db.Connect("dongguan")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				tx, err := sess.Begin(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if err := tx.Insert(ctx, "kv", globaldb.Row{int64(i), "v"}); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(time.Since(start).Microseconds())/float64(b.N), "µs/commit")
		})
	}
}

// BenchmarkAblationHeartbeatRCPLag measures how far the RCP trails a fresh
// commit for different heartbeat intervals. Heartbeats are what keep the
// RCP advancing on idle shards (Sec. IV-A); slower heartbeats mean staler
// replica reads.
func BenchmarkAblationHeartbeatRCPLag(b *testing.B) {
	ctx := context.Background()
	for _, hb := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		b.Run(fmt.Sprintf("heartbeat=%v", hb), func(b *testing.B) {
			cfg := ablationConfig()
			cfg.RCP.HeartbeatInterval = hb
			db, err := globaldb.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.CreateTable(ctx, ablationSchema()); err != nil {
				b.Fatal(err)
			}
			sess, err := db.Connect("xian")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var totalLag time.Duration
			for i := 0; i < b.N; i++ {
				tx, err := sess.Begin(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if err := tx.Insert(ctx, "kv", globaldb.Row{int64(i), "v"}); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(ctx); err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				for db.Cluster().Collector.RCP() < tx.CommitTS() {
					time.Sleep(200 * time.Microsecond)
					if time.Since(start) > 10*time.Second {
						b.Fatal("RCP stalled")
					}
				}
				totalLag += time.Since(start)
			}
			b.ReportMetric(float64(totalLag.Microseconds())/float64(b.N), "µs-RCP-lag")
		})
	}
}

// BenchmarkAblationLocalReplicaVsRemotePrimary quantifies the latency win
// of the ROR path: a point read served by the local replica versus the
// same read forced to a remote shard primary.
func BenchmarkAblationLocalReplicaVsRemotePrimary(b *testing.B) {
	ctx := context.Background()
	cfg := ablationConfig()
	db, err := globaldb.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := db.CreateTable(ctx, ablationSchema()); err != nil {
		b.Fatal(err)
	}
	// Load rows and find one whose shard primary is remote from Dongguan.
	loader, _ := db.Connect("xian")
	var remoteKey int64 = -1
	var lastTx *globaldb.Tx
	for i := int64(0); i < 32; i++ {
		tx, err := loader.Begin(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Insert(ctx, "kv", globaldb.Row{i, "v"}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			b.Fatal(err)
		}
		lastTx = tx
		shard := db.Cluster().ShardOf(i)
		if db.Cluster().Primaries()[shard].Region() != "dongguan" && remoteKey < 0 {
			remoteKey = i
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for db.Cluster().Collector.RCP() < lastTx.CommitTS() {
		if time.Now().After(deadline) {
			b.Fatal("RCP never caught up")
		}
		time.Sleep(time.Millisecond)
	}
	sess, err := db.Connect("dongguan")
	if err != nil {
		b.Fatal(err)
	}

	b.Run("remote-primary", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			tx, err := sess.Begin(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if _, found, err := tx.Get(ctx, "kv", []any{remoteKey}); err != nil || !found {
				b.Fatalf("get: %v %v", found, err)
			}
			if err := tx.Commit(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(time.Since(start).Microseconds())/float64(b.N), "µs/read")
	})
	b.Run("local-replica", func(b *testing.B) {
		start := time.Now()
		for i := 0; i < b.N; i++ {
			q, err := sess.ReadOnly(ctx, globaldb.AnyStaleness, "kv")
			if err != nil {
				b.Fatal(err)
			}
			if _, found, err := q.Get(ctx, "kv", []any{remoteKey}); err != nil || !found {
				b.Fatalf("get: %v %v", found, err)
			}
		}
		b.ReportMetric(float64(time.Since(start).Microseconds())/float64(b.N), "µs/read")
	})
}
