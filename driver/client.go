package driver

import (
	"context"
	"strconv"

	"globaldb/gsql"
	"globaldb/server/wire"
)

// ClientSession is a thin, single-connection network client for tools that
// want gsql.Result-shaped answers without database/sql in the way — the
// interactive shell's network mode. Like a gsql.Session it is not safe for
// concurrent use.
type ClientSession struct {
	wc *wireClient
}

// Dial connects to a network server and runs the handshake with the
// Config's region and staleness.
func Dial(ctx context.Context, addr string, cfg Config) (*ClientSession, error) {
	wc, err := dialWire(ctx, addr, cfg)
	if err != nil {
		return nil, err
	}
	return &ClientSession{wc: wc}, nil
}

// result assembles the gsql.Result shape from a collected response; the
// Done frame's scan counters make network clients report the same pushdown
// observability in-process callers see.
func clientResult(done *wire.Done, hdr *wire.RowHeader, rows [][]any) *gsql.Result {
	return &gsql.Result{
		Columns:    hdr.Columns,
		Rows:       rows,
		Affected:   int(done.Affected),
		Msg:        done.Msg,
		OnReplicas: hdr.OnReplicas,
		Scan:       done.Stats,
	}
}

// ExecScript runs SQL — one statement with args bound, or a
// multi-statement script when args is empty — and materializes the (last)
// result.
func (s *ClientSession) ExecScript(ctx context.Context, sql string, args ...any) (*gsql.Result, error) {
	done, hdr, rows, err := s.wc.collect(&wire.Query{SQL: sql, Args: args})
	if err != nil {
		return nil, err
	}
	return clientResult(done, hdr, rows), nil
}

// Prepare parses a statement server-side for repeated execution.
func (s *ClientSession) Prepare(ctx context.Context, sql string) (*ClientStmt, error) {
	s.wc.stmtSeq++
	name := "c" + strconv.Itoa(s.wc.stmtSeq)
	n, err := s.wc.parse(name, sql)
	if err != nil {
		return nil, err
	}
	return &ClientStmt{sess: s, name: name, numParams: n}, nil
}

// ServerStats fetches the server's live counters and per-statement-type
// latency summaries over the admin Stats frame.
func (s *ClientSession) ServerStats() (*wire.StatsResult, error) {
	return roundTrip[*wire.StatsResult](s.wc, &wire.Stats{})
}

// Region reports where the server homed the session (from the handshake).
func (s *ClientSession) Region() string { return s.wc.region }

// Mode reports the cluster's transaction mode (from the handshake).
func (s *ClientSession) Mode() string { return s.wc.mode }

// Close tears the connection down.
func (s *ClientSession) Close() error { return s.wc.close() }

// ClientStmt is a server-side prepared statement owned by a ClientSession.
type ClientStmt struct {
	sess      *ClientSession
	name      string
	numParams int
	closed    bool
}

// NumParams reports how many arguments Exec binds.
func (st *ClientStmt) NumParams() int { return st.numParams }

// Exec runs the prepared statement and materializes its result.
func (st *ClientStmt) Exec(ctx context.Context, args ...any) (*gsql.Result, error) {
	done, hdr, rows, err := st.sess.wc.collect(&wire.Execute{Name: st.name, Args: args})
	if err != nil {
		return nil, err
	}
	return clientResult(done, hdr, rows), nil
}

// Close releases the server-side statement.
func (st *ClientStmt) Close() error {
	if st.closed || st.sess.wc.broken {
		return nil
	}
	st.closed = true
	_, err := roundTrip[*wire.Done](st.sess.wc, &wire.CloseStmt{Name: st.name})
	return err
}
