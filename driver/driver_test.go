package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"testing"

	"globaldb"
)

var bg = context.Background()

// openCluster builds a fast in-process three-city cluster.
func openCluster(t *testing.T) *globaldb.DB {
	t.Helper()
	cfg := globaldb.ThreeCity()
	cfg.TimeScale = 0.02
	cfg.Shards = 4
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

// TestSQLConformance drives the full database/sql round trip the driver
// exists for: OpenDB, Ping, DDL, a prepared INSERT executed repeatedly
// with bound parameters, a prepared SELECT with IN-list and LIMIT
// placeholders, row streaming, and transaction commit/rollback. It runs
// unchanged against both transports: in process and over TCP through the
// wire server and the driver's connection pool.
func TestSQLConformance(t *testing.T) {
	forEachTransport(t, testSQLConformance)
}

func testSQLConformance(t *testing.T, db *globaldb.DB, mk func(Config) sqldriver.Connector) {
	sqldb := openDB(t, mk(Config{Region: "xian"}))
	if err := sqldb.PingContext(bg); err != nil {
		t.Fatal(err)
	}

	if _, err := sqldb.ExecContext(bg, `CREATE TABLE accounts (
		branch BIGINT, id BIGINT, owner TEXT, balance DOUBLE,
		PRIMARY KEY (branch, id)) SHARD BY branch`); err != nil {
		t.Fatal(err)
	}

	// Prepared INSERT: one parse+plan, many executions with fresh args.
	ins, err := sqldb.PrepareContext(bg, "INSERT INTO accounts VALUES (?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		res, err := ins.ExecContext(bg, int64(1), i, "owner", float64(i)*10)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if n, err := res.RowsAffected(); err != nil || n != 1 {
			t.Fatalf("insert %d affected %d (%v)", i, n, err)
		}
	}
	ins.Close()

	// NumInput arity enforcement comes from database/sql itself.
	get, err := sqldb.PrepareContext(bg, "SELECT owner, balance FROM accounts WHERE branch = $1 AND id = $2")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Close()
	if _, err := get.QueryContext(bg, int64(1)); err == nil {
		t.Fatal("wrong arity must fail")
	}
	var owner string
	var balance float64
	if err := get.QueryRowContext(bg, int64(1), int64(7)).Scan(&owner, &balance); err != nil {
		t.Fatal(err)
	}
	if owner != "owner" || balance != 70 {
		t.Fatalf("got %q %v", owner, balance)
	}

	// IN list + parameterized LIMIT, streamed through sql.Rows.
	rows, err := sqldb.QueryContext(bg,
		"SELECT id FROM accounts WHERE branch = ? AND id IN (?, ?, ?) ORDER BY id LIMIT ?",
		int64(1), int64(3), int64(5), int64(9), int64(2))
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 5 {
		t.Fatalf("IN+LIMIT ids: %v", ids)
	}

	// Transactions: a rollback leaves no trace, a commit is visible.
	tx, err := sqldb.BeginTx(bg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(bg, "UPDATE accounts SET balance = balance + ? WHERE branch = ? AND id = ?",
		5.0, int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var got float64
	if err := sqldb.QueryRowContext(bg, "SELECT balance FROM accounts WHERE branch = 1 AND id = 1").Scan(&got); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("rollback leaked: balance %v", got)
	}

	tx, err = sqldb.BeginTx(bg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ExecContext(bg, "UPDATE accounts SET balance = balance + ? WHERE branch = ? AND id = ?",
		5.0, int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}
	// The transaction sees its own write before commit.
	if err := tx.QueryRowContext(bg, "SELECT balance FROM accounts WHERE branch = 1 AND id = 1").Scan(&got); err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("own write invisible in tx: %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := sqldb.QueryRowContext(bg, "SELECT balance FROM accounts WHERE branch = 1 AND id = 1").Scan(&got); err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("commit lost: balance %v", got)
	}

	// SHOW and EXPLAIN work through Query via the materialized fallback.
	var tbl string
	if err := sqldb.QueryRowContext(bg, "SHOW TABLES").Scan(&tbl); err != nil || tbl != "accounts" {
		t.Fatalf("SHOW TABLES: %q %v", tbl, err)
	}
}

// TestRowsStreamLazily verifies the acceptance criterion that driver
// Rows.Next pulls storage pages lazily: reading a couple of rows of a large
// table and closing must fetch far fewer rows from the storage layer (per
// the CN's rows-fetched counter) than draining the table does.
func TestRowsStreamLazily(t *testing.T) {
	db := openCluster(t)
	sqldb := Open(db, Config{Region: "xian"})
	defer sqldb.Close()
	// One pooled connection so the counter deltas below are attributable.
	sqldb.SetMaxOpenConns(1)

	if _, err := sqldb.ExecContext(bg, `CREATE TABLE big (w BIGINT, id BIGINT, pad TEXT,
		PRIMARY KEY (w, id)) SHARD BY w`); err != nil {
		t.Fatal(err)
	}
	// All rows share one shard so the scan below opens a single cursor;
	// a cross-shard merge necessarily prefetches one page per shard.
	const total = 800
	ins, err := sqldb.PrepareContext(bg, "INSERT INTO big VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < total; i++ {
		if _, err := ins.ExecContext(bg, int64(0), i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	ins.Close()

	fetched := func() int64 { return db.Cluster().CN("xian").ScanRowsFetched() }

	before := fetched()
	rows, err := sqldb.QueryContext(bg, "SELECT id FROM big WHERE w = ?", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2 && rows.Next(); i++ {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	early := fetched() - before

	// Full-drain baseline: the same row query read to exhaustion must ship
	// every row. (COUNT(*) is no longer a valid baseline — aggregate
	// pushdown ships one partial state per shard instead of the rows.)
	before = fetched()
	rows, err = sqldb.QueryContext(bg, "SELECT id FROM big WHERE w = ?", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	full := fetched() - before
	if n != total {
		t.Fatalf("drained %d rows, want %d", n, total)
	}
	if full < total {
		t.Fatalf("full scan fetched %d rows, want >= %d", full, total)
	}
	// The paged cursor prefetches one page beyond the one being read (the
	// default double-buffering window), so an early close pays for at most
	// two pages — still far below the full drain.
	if early > 2*int64(globaldb.DefaultScanPageSize) {
		t.Fatalf("early close fetched %d of %d rows: driver Rows are not streaming", early, full)
	}

	// And the pushed aggregate itself: COUNT(*) must now cross the WAN as
	// O(shards) partial rows, not O(table).
	before = fetched()
	var cnt int
	if err := sqldb.QueryRowContext(bg, "SELECT COUNT(*) FROM big").Scan(&cnt); err != nil {
		t.Fatal(err)
	}
	aggRows := fetched() - before
	if cnt != total {
		t.Fatalf("COUNT(*) = %d, want %d", cnt, total)
	}
	if aggRows >= total/10 {
		t.Fatalf("pushed COUNT(*) shipped %d rows over the WAN, want O(shards)", aggRows)
	}
	t.Logf("rows fetched: early-close=%d full-drain=%d count(*)=%d", early, full, aggRows)
}

// TestDSNAndStaleness exercises sql.Open with a registered cluster name
// and checks that a staleness DSN routes reads to replicas while SET
// STALENESS works per connection.
func TestDSNAndStaleness(t *testing.T) {
	db := openCluster(t)
	Register("dsn-test", db)
	defer Unregister("dsn-test")

	primary := Open(db, Config{Region: "xian"})
	defer primary.Close()
	if _, err := primary.ExecContext(bg, `CREATE TABLE t (k BIGINT, PRIMARY KEY (k))`); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.ExecContext(bg, "INSERT INTO t VALUES (?)", int64(1)); err != nil {
		t.Fatal(err)
	}

	replica, err := sql.Open("globaldb", "dsn-test?region=dongguan&staleness=any")
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	replica.SetMaxOpenConns(1)
	var mode string
	if err := replica.QueryRowContext(bg, "SHOW STALENESS").Scan(&mode); err != nil {
		t.Fatal(err)
	}
	if mode != "ANY" {
		t.Fatalf("DSN staleness not applied: %q", mode)
	}
	// Per-connection override back to primary reads.
	if _, err := replica.ExecContext(bg, "SET STALENESS = NONE"); err != nil {
		t.Fatal(err)
	}
	if err := replica.QueryRowContext(bg, "SHOW STALENESS").Scan(&mode); err != nil {
		t.Fatal(err)
	}
	if mode != "NONE" {
		t.Fatalf("SET STALENESS override failed: %q", mode)
	}

	// DSN errors surface when the connector is built.
	if _, err := (Driver{}).OpenConnector("nope?region=xian"); err == nil {
		t.Fatal("unknown cluster name must fail")
	}
	if _, err := (Driver{}).OpenConnector("dsn-test?staleness=bogus"); err == nil {
		t.Fatal("bad staleness must fail")
	}
	if _, err := (Driver{}).OpenConnector("dsn-test?nope=1"); err == nil {
		t.Fatal("unknown DSN option must fail")
	}
}
