package driver

import (
	"bufio"
	"context"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"syscall"

	"globaldb/server/wire"
)

// wireClient is one TCP connection to a GlobalDB server, speaking the
// server/wire protocol. It is the pooled unit: the connection pool hands
// wireClients out to netConns and takes them back on close.
type wireClient struct {
	nc net.Conn
	br *bufio.Reader
	rd *wire.Reader
	w  *bufio.Writer

	// broken marks a connection whose framing can no longer be trusted
	// (I/O error, protocol violation). The pool discards it on checkin.
	broken bool
	// inTxn mirrors the server session's transaction state, reported by
	// every Done frame; the pool resets non-clean connections on checkin.
	inTxn bool
	// stmtSeq numbers client-generated prepared-statement names.
	stmtSeq int
	// region and mode echo the server's HelloOK: where the session is
	// homed and the cluster's transaction mode.
	region string
	mode   string
}

// dialWire connects and runs the handshake, carrying the Config's region
// and staleness the same way the in-process connector applies them.
func dialWire(ctx context.Context, addr string, cfg Config) (*wireClient, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(nc)
	wc := &wireClient{nc: nc, br: br, rd: wire.NewReader(br), w: bufio.NewWriter(nc)}
	hello := &wire.Hello{Version: wire.ProtocolVersion, Region: cfg.Region, Staleness: cfg.stalenessOption()}
	if err := wc.send(hello); err != nil {
		nc.Close()
		return nil, err
	}
	m, err := wc.recv()
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch m := m.(type) {
	case *wire.HelloOK:
		wc.region, wc.mode = m.Region, m.Mode
		return wc, nil
	case *wire.Error:
		nc.Close()
		return nil, fmt.Errorf("globaldb driver: server refused connection: %s", m.Msg)
	default:
		nc.Close()
		return nil, fmt.Errorf("globaldb driver: unexpected handshake reply %v", m.Type())
	}
}

// stalenessOption renders the Config's replica-read setting in the DSN
// grammar the handshake carries.
func (cfg Config) stalenessOption() string {
	switch {
	case cfg.Staleness > 0:
		return cfg.Staleness.String()
	case cfg.ReplicaReads:
		return "any"
	default:
		return ""
	}
}

func (wc *wireClient) close() error { return wc.nc.Close() }

// healthy reports whether a checked-out idle connection is still usable.
// An idle connection must have no pending bytes, so a non-blocking
// MSG_PEEK distinguishes the three cases without consuming anything:
// EAGAIN means the peer is quiet and alive, readable data means framing is
// already violated, and EOF/error means the server closed or died.
func (wc *wireClient) healthy() bool {
	if wc.broken {
		return false
	}
	if wc.br.Buffered() > 0 {
		wc.broken = true
		return false
	}
	sc, ok := wc.nc.(syscall.Conn)
	if !ok {
		return true
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		wc.broken = true
		return false
	}
	alive := false
	rerr := rc.Read(func(fd uintptr) bool {
		var buf [1]byte
		n, _, err := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		alive = n <= 0 && (err == syscall.EAGAIN || err == syscall.EWOULDBLOCK)
		return true // never block waiting for readability
	})
	if rerr != nil || !alive {
		wc.broken = true
		return false
	}
	return true
}

func (wc *wireClient) send(m wire.Message) error {
	if wc.broken {
		return errBrokenConn
	}
	if err := wire.WriteMessage(wc.w, m); err != nil {
		wc.broken = true
		return err
	}
	if err := wc.w.Flush(); err != nil {
		wc.broken = true
		return err
	}
	return nil
}

func (wc *wireClient) recv() (wire.Message, error) {
	m, err := wc.rd.ReadMessage()
	if err != nil {
		wc.broken = true
		return nil, err
	}
	return m, nil
}

var errBrokenConn = errors.New("globaldb driver: connection is broken")

// remoteError converts a server Error frame. Statement errors leave the
// connection usable; anything else means the server is closing it.
func (wc *wireClient) remoteError(e *wire.Error) error {
	if e.Code != "statement" {
		wc.broken = true
	}
	return errors.New(e.Msg)
}

// startStream sends a statement request and reads through the response's
// RowHeader, leaving the row frames for the caller to consume.
func (wc *wireClient) startStream(req wire.Message) (*wire.RowHeader, error) {
	if err := wc.send(req); err != nil {
		return nil, err
	}
	m, err := wc.recv()
	if err != nil {
		return nil, err
	}
	switch m := m.(type) {
	case *wire.RowHeader:
		return m, nil
	case *wire.Error:
		return nil, wc.remoteError(m)
	default:
		wc.broken = true
		return nil, fmt.Errorf("globaldb driver: unexpected %v starting a stream", m.Type())
	}
}

// collect runs a statement and materializes its whole response.
func (wc *wireClient) collect(req wire.Message) (*wire.Done, *wire.RowHeader, [][]any, error) {
	hdr, err := wc.startStream(req)
	if err != nil {
		return nil, nil, nil, err
	}
	var rows [][]any
	for {
		m, err := wc.recv()
		if err != nil {
			return nil, nil, nil, err
		}
		switch m := m.(type) {
		case *wire.RowBatch:
			rows = append(rows, m.Rows...)
		case *wire.Done:
			wc.inTxn = m.InTxn
			return m, hdr, rows, nil
		case *wire.Error:
			return nil, nil, nil, wc.remoteError(m)
		default:
			wc.broken = true
			return nil, nil, nil, fmt.Errorf("globaldb driver: unexpected %v mid-stream", m.Type())
		}
	}
}

// cancelStream aborts an in-flight stream: send Cancel, then drain until
// the server's terminal frame. The server stops between batches, so only
// frames already in flight cross the wire.
func (wc *wireClient) cancelStream() error {
	if err := wc.send(&wire.Cancel{}); err != nil {
		return err
	}
	for {
		m, err := wc.recv()
		if err != nil {
			return err
		}
		switch m := m.(type) {
		case *wire.RowBatch:
			// already in flight when the cancel landed; drop it
		case *wire.Done:
			wc.inTxn = m.InTxn
			return nil
		case *wire.Error:
			return nil
		default:
			wc.broken = true
			return fmt.Errorf("globaldb driver: unexpected %v draining a canceled stream", m.Type())
		}
	}
}

// parse prepares a named statement server-side.
func (wc *wireClient) parse(name, sql string) (int, error) {
	if err := wc.send(&wire.Parse{Name: name, SQL: sql}); err != nil {
		return 0, err
	}
	m, err := wc.recv()
	if err != nil {
		return 0, err
	}
	switch m := m.(type) {
	case *wire.ParseOK:
		return m.NumParams, nil
	case *wire.Error:
		return 0, wc.remoteError(m)
	default:
		wc.broken = true
		return 0, fmt.Errorf("globaldb driver: unexpected %v answering Parse", m.Type())
	}
}

// roundTrip sends a request expecting a single terminal frame of type T.
func roundTrip[T wire.Message](wc *wireClient, req wire.Message) (T, error) {
	var zero T
	if err := wc.send(req); err != nil {
		return zero, err
	}
	m, err := wc.recv()
	if err != nil {
		return zero, err
	}
	if e, ok := m.(*wire.Error); ok {
		return zero, wc.remoteError(e)
	}
	t, ok := m.(T)
	if !ok {
		wc.broken = true
		return zero, fmt.Errorf("globaldb driver: unexpected %v", m.Type())
	}
	return t, nil
}

// reset readies the connection for a new logical user (rolls back any open
// transaction server-side).
func (wc *wireClient) reset() error {
	if _, err := roundTrip[*wire.Done](wc, &wire.Reset{}); err != nil {
		return err
	}
	wc.inTxn = false
	return nil
}

// netConn is one database/sql connection over TCP. Like the in-process
// conn it relies on database/sql's per-connection serialization; one
// wireClient never sees concurrent statements.
type netConn struct {
	pool *connPool
	wc   *wireClient
}

var (
	_ sqldriver.Conn               = (*netConn)(nil)
	_ sqldriver.ConnPrepareContext = (*netConn)(nil)
	_ sqldriver.ConnBeginTx        = (*netConn)(nil)
	_ sqldriver.ExecerContext      = (*netConn)(nil)
	_ sqldriver.QueryerContext     = (*netConn)(nil)
	_ sqldriver.Pinger             = (*netConn)(nil)
	_ sqldriver.SessionResetter    = (*netConn)(nil)
	_ sqldriver.Validator          = (*netConn)(nil)
)

func (c *netConn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

func (c *netConn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	c.wc.stmtSeq++
	name := "s" + strconv.Itoa(c.wc.stmtSeq)
	n, err := c.wc.parse(name, query)
	if err != nil {
		return nil, err
	}
	return &netStmt{conn: c, name: name, numParams: n}, nil
}

// Close returns the wire connection to the pool (or discards it when
// broken); the TCP socket usually outlives this database/sql connection.
func (c *netConn) Close() error {
	c.pool.put(c.wc)
	return nil
}

func (c *netConn) Begin() (sqldriver.Tx, error) {
	return c.BeginTx(context.Background(), sqldriver.TxOptions{})
}

// BeginTx mirrors the in-process conn's contract: snapshot-isolated
// read-write transactions only.
func (c *netConn) BeginTx(ctx context.Context, opts sqldriver.TxOptions) (sqldriver.Tx, error) {
	if sqldriver.IsolationLevel(0) != opts.Isolation {
		return nil, fmt.Errorf("globaldb driver: only the default isolation level is supported")
	}
	if opts.ReadOnly {
		return nil, fmt.Errorf("globaldb driver: read-only transactions are not supported; use a staleness-configured connection for replica reads")
	}
	if _, _, _, err := c.wc.collect(&wire.Query{SQL: "BEGIN"}); err != nil {
		return nil, err
	}
	return &netTx{conn: c}, nil
}

func (c *netConn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	done, _, _, err := c.wc.collect(&wire.Query{SQL: query, Args: vals})
	if err != nil {
		return nil, err
	}
	return result{affected: done.Affected}, nil
}

func (c *netConn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	hdr, err := c.wc.startStream(&wire.Query{SQL: query, Args: vals})
	if err != nil {
		return nil, err
	}
	return &wireRows{ctx: ctx, wc: c.wc, cols: hdr.Columns}, nil
}

func (c *netConn) Ping(ctx context.Context) error {
	_, err := roundTrip[*wire.Pong](c.wc, &wire.Ping{})
	return err
}

func (c *netConn) ResetSession(ctx context.Context) error {
	if c.wc.broken {
		return sqldriver.ErrBadConn
	}
	if c.wc.inTxn {
		if err := c.wc.reset(); err != nil {
			return sqldriver.ErrBadConn
		}
	}
	return nil
}

// IsValid lets database/sql drop broken connections instead of reusing
// them.
func (c *netConn) IsValid() bool { return !c.wc.broken }

// netStmt is a server-side prepared statement reached by name.
type netStmt struct {
	conn      *netConn
	name      string
	numParams int
	closed    bool
}

var (
	_ sqldriver.Stmt             = (*netStmt)(nil)
	_ sqldriver.StmtExecContext  = (*netStmt)(nil)
	_ sqldriver.StmtQueryContext = (*netStmt)(nil)
)

func (s *netStmt) Close() error {
	if s.closed || s.conn.wc.broken {
		return nil
	}
	s.closed = true
	_, err := roundTrip[*wire.Done](s.conn.wc, &wire.CloseStmt{Name: s.name})
	return err
}

func (s *netStmt) NumInput() int { return s.numParams }

func (s *netStmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.ExecContext(context.Background(), plainValues(args))
}

func (s *netStmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.QueryContext(context.Background(), plainValues(args))
}

func (s *netStmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	done, _, _, err := s.conn.wc.collect(&wire.Execute{Name: s.name, Args: vals})
	if err != nil {
		return nil, err
	}
	return result{affected: done.Affected}, nil
}

func (s *netStmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	hdr, err := s.conn.wc.startStream(&wire.Execute{Name: s.name, Args: vals})
	if err != nil {
		return nil, err
	}
	return &wireRows{ctx: ctx, wc: s.conn.wc, cols: hdr.Columns}, nil
}

// netTx adapts the server session's explicit transaction.
type netTx struct {
	conn *netConn
}

func (t *netTx) Commit() error {
	_, _, _, err := t.conn.wc.collect(&wire.Query{SQL: "COMMIT"})
	return err
}

func (t *netTx) Rollback() error {
	_, _, _, err := t.conn.wc.collect(&wire.Query{SQL: "ROLLBACK"})
	return err
}

// wireRows streams a statement's response frames. Rows arrive in batches;
// Next steps through the current batch and pulls the next frame when it
// runs out. Closing before the terminal frame cancels the server-side
// stream, which stops the scans mid-table.
type wireRows struct {
	ctx    context.Context
	wc     *wireClient
	cols   []string
	batch  [][]any
	bi     int
	done   bool // terminal frame consumed
	closed bool
}

func (r *wireRows) Columns() []string { return r.cols }

func (r *wireRows) Next(dest []sqldriver.Value) error {
	if r.closed {
		return io.EOF
	}
	if err := r.ctx.Err(); err != nil && !r.done {
		// Abort mid-scan: cancel server-side, drain, surface the
		// context's error rather than the remaining rows.
		r.closed = true
		_ = r.wc.cancelStream()
		return err
	}
	for r.bi >= len(r.batch) {
		if r.done {
			return io.EOF
		}
		m, err := r.wc.recv()
		if err != nil {
			return err
		}
		switch m := m.(type) {
		case *wire.RowBatch:
			r.batch, r.bi = m.Rows, 0
		case *wire.Done:
			r.wc.inTxn = m.InTxn
			r.done = true
		case *wire.Error:
			r.done = true
			return r.wc.remoteError(m)
		default:
			r.wc.broken = true
			return fmt.Errorf("globaldb driver: unexpected %v mid-stream", m.Type())
		}
	}
	row := r.batch[r.bi]
	r.bi++
	for i, v := range row {
		dest[i] = v
	}
	return nil
}

func (r *wireRows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.done {
		return nil
	}
	return r.wc.cancelStream()
}
