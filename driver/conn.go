package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"

	"globaldb/gsql"
)

// conn is one database/sql connection: a gsql session with its DDL-aware
// plan cache. database/sql serializes calls per connection, matching the
// session's no-concurrency contract.
type conn struct {
	sess *gsql.Session
}

var (
	_ sqldriver.Conn               = (*conn)(nil)
	_ sqldriver.ConnPrepareContext = (*conn)(nil)
	_ sqldriver.ConnBeginTx        = (*conn)(nil)
	_ sqldriver.ExecerContext      = (*conn)(nil)
	_ sqldriver.QueryerContext     = (*conn)(nil)
	_ sqldriver.Pinger             = (*conn)(nil)
	_ sqldriver.SessionResetter    = (*conn)(nil)
)

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext parses and plans the statement once; executions bind
// fresh parameters against the cached plan.
func (c *conn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	st, err := c.sess.Prepare(ctx, query)
	if err != nil {
		return nil, err
	}
	return &stmt{conn: c, st: st}, nil
}

// Close abandons the connection, rolling back any open transaction.
func (c *conn) Close() error {
	if c.sess.InTxn() {
		_, err := c.sess.ExecStmt(context.Background(), &gsql.Rollback{})
		return err
	}
	return nil
}

// Begin implements driver.Conn.
func (c *conn) Begin() (sqldriver.Tx, error) {
	return c.BeginTx(context.Background(), sqldriver.TxOptions{})
}

// BeginTx starts an explicit transaction. GlobalDB runs snapshot-isolated
// read-write transactions only, so a requested isolation level or
// read-only mode is rejected rather than silently weakened (read-only
// work belongs on the replica-read path: a staleness-configured
// connection, no explicit transaction).
func (c *conn) BeginTx(ctx context.Context, opts sqldriver.TxOptions) (sqldriver.Tx, error) {
	if sqldriver.IsolationLevel(0) != opts.Isolation {
		return nil, fmt.Errorf("globaldb driver: only the default isolation level is supported")
	}
	if opts.ReadOnly {
		return nil, fmt.Errorf("globaldb driver: read-only transactions are not supported; use a staleness-configured connection for replica reads")
	}
	if _, err := c.sess.ExecStmt(ctx, &gsql.Begin{}); err != nil {
		return nil, err
	}
	return &tx{conn: c}, nil
}

// ExecContext runs a statement without preparing it first; the session
// plan cache still avoids re-parsing repeated texts.
func (c *conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	res, err := c.sess.Exec(ctx, query, vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.Affected)}, nil
}

// QueryContext streams a SELECT's rows; non-SELECT statements that return
// rows (SHOW, EXPLAIN) fall back to their materialized result.
func (c *conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	r, err := c.sess.Query(ctx, query, vals...)
	if errors.Is(err, gsql.ErrNotSelect) {
		res, err := c.sess.Exec(ctx, query, vals...)
		if err != nil {
			return nil, err
		}
		return &resultRows{cols: res.Columns, rows: res.Rows}, nil
	}
	if err != nil {
		return nil, err
	}
	return &streamRows{r: r, ctx: ctx}, nil
}

// Ping verifies the session's computing node is still reachable with a
// trivial read-only statement.
func (c *conn) Ping(ctx context.Context) error {
	_, err := c.sess.Exec(ctx, "SHOW REGIONS")
	return err
}

// ResetSession readies a pooled connection for reuse, rolling back a
// transaction a previous user abandoned.
func (c *conn) ResetSession(ctx context.Context) error {
	if c.sess.InTxn() {
		_, err := c.sess.ExecStmt(ctx, &gsql.Rollback{})
		return err
	}
	return nil
}

// namedValues converts database/sql's argument form into plain values.
// Positional arguments only: GlobalDB's placeholders are `?`/`$n`.
func namedValues(args []sqldriver.NamedValue) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]any, len(args))
	for _, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("globaldb driver: named parameter %q is not supported; use positional '?' or '$n'", a.Name)
		}
		if a.Ordinal < 1 || a.Ordinal > len(args) {
			return nil, fmt.Errorf("globaldb driver: parameter ordinal %d out of range", a.Ordinal)
		}
		out[a.Ordinal-1] = a.Value
	}
	return out, nil
}

// stmt is a prepared statement bound to one connection.
type stmt struct {
	conn *conn
	st   *gsql.Stmt
}

var (
	_ sqldriver.Stmt             = (*stmt)(nil)
	_ sqldriver.StmtExecContext  = (*stmt)(nil)
	_ sqldriver.StmtQueryContext = (*stmt)(nil)
)

func (s *stmt) Close() error { return s.st.Close() }

// NumInput reports the statement's placeholder count so database/sql can
// enforce argument arity before reaching the engine.
func (s *stmt) NumInput() int { return s.st.NumParams() }

func (s *stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.ExecContext(context.Background(), plainValues(args))
}

func (s *stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.QueryContext(context.Background(), plainValues(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.Exec(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.Affected)}, nil
}

func (s *stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	vals, err := namedValues(args)
	if err != nil {
		return nil, err
	}
	r, err := s.st.Query(ctx, vals...)
	if errors.Is(err, gsql.ErrNotSelect) {
		res, err := s.st.Exec(ctx, vals...)
		if err != nil {
			return nil, err
		}
		return &resultRows{cols: res.Columns, rows: res.Rows}, nil
	}
	if err != nil {
		return nil, err
	}
	return &streamRows{r: r, ctx: ctx}, nil
}

// plainValues adapts the legacy driver.Value argument form.
func plainValues(args []sqldriver.Value) []sqldriver.NamedValue {
	out := make([]sqldriver.NamedValue, len(args))
	for i, v := range args {
		out[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// tx adapts the session's explicit transaction to driver.Tx.
type tx struct {
	conn *conn
}

func (t *tx) Commit() error {
	_, err := t.conn.sess.ExecStmt(context.Background(), &gsql.Commit{})
	return err
}

func (t *tx) Rollback() error {
	_, err := t.conn.sess.ExecStmt(context.Background(), &gsql.Rollback{})
	return err
}

// result reports rows affected. GlobalDB has no auto-increment keys, so
// LastInsertId is unsupported.
type result struct {
	affected int64
}

func (r result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("globaldb driver: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) { return r.affected, nil }

// streamRows surfaces a streaming gsql result: each Next pulls from the
// volcano pipeline, which pulls storage pages across the simulated WAN on
// demand — closing early stops the scans mid-table.
type streamRows struct {
	r   *gsql.Rows
	ctx context.Context
}

func (r *streamRows) Columns() []string { return r.r.Columns() }

func (r *streamRows) Close() error { return r.r.Close() }

func (r *streamRows) Next(dest []sqldriver.Value) error {
	// Abort mid-scan when the query's context is canceled: close the
	// cursor (stopping the scans mid-table) instead of draining the rest.
	if err := r.ctx.Err(); err != nil {
		r.r.Close()
		return err
	}
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	for i, v := range r.r.Row() {
		dest[i] = v
	}
	return nil
}

// resultRows surfaces an already-materialized result (SHOW, EXPLAIN).
type resultRows struct {
	cols []string
	rows [][]any
	i    int
}

func (r *resultRows) Columns() []string { return r.cols }

func (r *resultRows) Close() error { return nil }

func (r *resultRows) Next(dest []sqldriver.Value) error {
	if r.i >= len(r.rows) {
		return io.EOF
	}
	for j, v := range r.rows[r.i] {
		dest[j] = v
	}
	r.i++
	return nil
}
