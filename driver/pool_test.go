package driver

import (
	"context"
	"database/sql"
	"testing"
	"time"

	"globaldb"
	"globaldb/server"
)

// startServer runs a wire server over a fast one-region cluster and
// returns its address.
func startServer(t *testing.T) (*globaldb.DB, *server.Server, string) {
	t.Helper()
	cfg := globaldb.OneRegion(0)
	cfg.TimeScale = 0.02
	cfg.Shards = 2
	db, err := globaldb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	srv := server.New(db, server.Options{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(bg, 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return db, srv, srv.Addr().String()
}

// TestPoolBoundsAndReuse pins the pool's contract: checkouts beyond
// maxconns block until a checkin, idle connections are reused rather than
// redialed, and a waiter's context cancellation unblocks it.
func TestPoolBoundsAndReuse(t *testing.T) {
	_, _, addr := startServer(t)
	nc := NewNetConnector(addr, Config{MaxConns: 2})
	defer nc.Close()

	c1, err := nc.Connect(bg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := nc.Connect(bg)
	if err != nil {
		t.Fatal(err)
	}
	if open, idle := nc.pool.stats(); open != 2 || idle != 0 {
		t.Fatalf("pool after 2 checkouts: open=%d idle=%d", open, idle)
	}

	// A third checkout must block on the maxconns bound...
	got := make(chan error, 1)
	go func() {
		c3, err := nc.Connect(bg)
		if err == nil {
			c3.Close()
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("third checkout did not block on maxconns=2 (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...until a connection checks back in.
	wc1 := c1.(*netConn).wc
	c1.Close()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("blocked checkout failed after checkin: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("checkout still blocked after a checkin")
	}

	// Idle reuse: the wire connection handed back is the one reused, no
	// fresh dial.
	c4, err := nc.Connect(bg)
	if err != nil {
		t.Fatal(err)
	}
	if c4.(*netConn).wc != wc1 {
		t.Fatal("idle connection was not reused")
	}
	c4.Close()
	c2.Close()
	if open, idle := nc.pool.stats(); open != 2 || idle != 2 {
		t.Fatalf("pool after checkins: open=%d idle=%d", open, idle)
	}

	// A waiter bails out when its context is canceled.
	c5, _ := nc.Connect(bg)
	c6, _ := nc.Connect(bg)
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	if _, err := nc.Connect(ctx); err != context.DeadlineExceeded {
		t.Fatalf("canceled waiter got %v, want context.DeadlineExceeded", err)
	}
	c5.Close()
	c6.Close()
}

// TestPoolHealthCheck pins the checkout health check: idle connections
// whose server died are detected and discarded, not handed to the caller.
func TestPoolHealthCheck(t *testing.T) {
	_, srv, addr := startServer(t)
	nc := NewNetConnector(addr, Config{MaxConns: 2})
	defer nc.Close()

	c, err := nc.Connect(bg)
	if err != nil {
		t.Fatal(err)
	}
	c.Close() // park it idle
	if _, idle := nc.pool.stats(); idle != 1 {
		t.Fatalf("idle=%d, want 1", idle)
	}

	// Kill the server. The parked connection is now a dead socket.
	ctx, cancel := context.WithTimeout(bg, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Checkout must notice (peek sees EOF), discard, and fail the redial
	// against the closed listener rather than hand out a dead connection.
	if _, err := nc.Connect(bg); err == nil {
		t.Fatal("checkout against a dead server must fail")
	}
	if open, idle := nc.pool.stats(); open != 0 || idle != 0 {
		t.Fatalf("dead connection not discarded: open=%d idle=%d", open, idle)
	}
}

// TestPoolStatsGauges pins the pool's exported observability: PoolStats
// tracks in-use/idle occupancy and lifetime wait and health-check-failure
// counts, and the same movements reach the process-wide driver_pool_*
// gauges as deltas (so several pools aggregate exactly).
func TestPoolStatsGauges(t *testing.T) {
	_, srv, addr := startServer(t)
	nc := NewNetConnector(addr, Config{MaxConns: 2})
	defer nc.Close()

	baseInUse := poolInUse.Value()
	baseIdle := poolIdle.Value()
	baseWaits := poolWaits.Value()
	baseHealth := poolHealthFails.Value()

	c1, err := nc.Connect(bg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := nc.Connect(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st := nc.PoolStats(); st.InUse != 2 || st.Idle != 0 {
		t.Fatalf("PoolStats after 2 checkouts: %+v", st)
	}
	if got := poolInUse.Value() - baseInUse; got != 2 {
		t.Fatalf("driver_pool_in_use delta = %d, want 2", got)
	}

	// A blocked checkout ticks the wait counter once it is enqueued.
	got := make(chan error, 1)
	go func() {
		c3, err := nc.Connect(bg)
		if err == nil {
			c3.Close()
		}
		got <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for nc.PoolStats().WaitCount == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked checkout never counted as a wait")
		}
		time.Sleep(time.Millisecond)
	}
	c1.Close()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if w := poolWaits.Value() - baseWaits; w != 1 {
		t.Fatalf("driver_pool_wait_total delta = %d, want 1", w)
	}

	c2.Close()
	if st := nc.PoolStats(); st.InUse != 0 || st.Idle != 2 {
		t.Fatalf("PoolStats after checkins: %+v", st)
	}
	if got := poolIdle.Value() - baseIdle; got != 2 {
		t.Fatalf("driver_pool_idle delta = %d, want 2", got)
	}

	// Kill the server: the next checkout health-checks the parked
	// connections, finds them dead, and counts the failures.
	ctx, cancel := context.WithTimeout(bg, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Connect(bg); err == nil {
		t.Fatal("checkout against a dead server must fail")
	}
	if st := nc.PoolStats(); st.HealthCheckFailures == 0 {
		t.Fatalf("health-check failures not counted: %+v", st)
	}
	if h := poolHealthFails.Value() - baseHealth; h == 0 {
		t.Fatal("driver_pool_health_check_failures_total did not move")
	}
	// The discarded connections left the gauges balanced.
	if st := nc.PoolStats(); st.InUse != 0 || st.Idle != 0 {
		t.Fatalf("gauges unbalanced after discard: %+v", st)
	}
}

// TestTCPDSN drives the tcp:// DSN end to end: sql.Open dials the server,
// the handshake applies region and staleness, and pool options parse.
func TestTCPDSN(t *testing.T) {
	_, _, addr := startServer(t)
	sqldb, err := sql.Open("globaldb", "tcp://"+addr+"?staleness=any&maxconns=3&maxidle=2")
	if err != nil {
		t.Fatal(err)
	}
	defer sqldb.Close()
	var mode string
	if err := sqldb.QueryRowContext(bg, "SHOW STALENESS").Scan(&mode); err != nil {
		t.Fatal(err)
	}
	if mode != "ANY" {
		t.Fatalf("DSN staleness not applied over TCP: %q", mode)
	}
	if _, err := sql.Open("globaldb", "tcp://"+addr+"?maxconns=zero"); err == nil {
		t.Fatal("bad maxconns must fail at Open")
	}
	// An unreachable server fails at first use, not at Open.
	bad, err := sql.Open("globaldb", "tcp://127.0.0.1:1?region=x")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if err := bad.PingContext(bg); err == nil {
		t.Fatal("ping against nothing must fail")
	}
}
