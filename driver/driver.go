// Package driver implements a database/sql/driver for GlobalDB, making the
// idiomatic Go database surface the front door to the cluster: standard
// connections, parameterized prepared statements whose plans are cached in
// the SQL layer, context-aware queries, transactions, and result rows that
// stream off the paged scan pipeline instead of materializing.
//
// A GlobalDB cluster is an in-process object, so the driver connects in one
// of two ways. With a *globaldb.DB in hand, build a connector directly:
//
//	db, _ := globaldb.Open(globaldb.ThreeCity())
//	sqldb := sql.OpenDB(driver.NewConnector(db, driver.Config{Region: "xian"}))
//
// Or register the cluster under a name and use a DSN with sql.Open:
//
//	driver.Register("prod", db)
//	sqldb, _ := sql.Open("globaldb", "prod?region=dongguan&staleness=50ms")
//
// The DSN (and Config) carry the connection's home region and its replica
// staleness bound. `staleness=any` routes out-of-transaction SELECTs to
// asynchronous replicas at the RCP with no freshness bound; a duration like
// `staleness=50ms` bounds how stale those reads may be; omitting it reads
// shard primaries. `SET STALENESS` works per connection at runtime too.
//
// Every connection owns one gsql session, so prepared statements get the
// session's DDL-aware plan cache: executing a prepared statement re-parses
// nothing, and a CREATE/DROP TABLE between executions replans transparently.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"globaldb"
	"globaldb/gsql"
)

func init() { sql.Register("globaldb", Driver{}) }

// Config tunes the connections a Connector produces.
type Config struct {
	// Region is the home region of the session (the computing node the
	// connection talks to). Empty selects the cluster's first region.
	Region string
	// ReplicaReads routes out-of-transaction SELECTs to asynchronous
	// replicas at the RCP with no freshness bound (SET STALENESS = ANY).
	ReplicaReads bool
	// Staleness bounds replica reads: at most this far behind the
	// primaries. A positive value implies ReplicaReads.
	Staleness time.Duration
}

// registry maps DSN cluster names to open DBs.
var registry sync.Map // string -> *globaldb.DB

// Register makes an open cluster reachable through sql.Open under the
// given name: sql.Open("globaldb", name+"?region=..."). Registering the
// same name again replaces the previous cluster.
func Register(name string, db *globaldb.DB) { registry.Store(name, db) }

// Unregister removes a named cluster.
func Unregister(name string) { registry.Delete(name) }

// Driver is the database/sql/driver entry point, registered as "globaldb".
type Driver struct{}

// Open connects using a DSN: "name?region=xian&staleness=50ms" where name
// was previously passed to Register.
func (d Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once and returns a reusable connector.
func (d Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	name, cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	v, ok := registry.Load(name)
	if !ok {
		return nil, fmt.Errorf("globaldb driver: no cluster registered as %q (call driver.Register)", name)
	}
	return NewConnector(v.(*globaldb.DB), cfg), nil
}

// parseDSN splits "name?opts" and decodes the option query string.
func parseDSN(dsn string) (name string, cfg Config, err error) {
	name, query, _ := strings.Cut(dsn, "?")
	if name == "" {
		return "", cfg, fmt.Errorf("globaldb driver: DSN %q names no cluster", dsn)
	}
	vals, err := url.ParseQuery(query)
	if err != nil {
		return "", cfg, fmt.Errorf("globaldb driver: bad DSN options %q: %v", query, err)
	}
	for key, vv := range vals {
		v := vv[len(vv)-1]
		switch key {
		case "region":
			cfg.Region = v
		case "staleness":
			switch strings.ToLower(v) {
			case "none", "":
				// primary reads, the default
			case "any":
				cfg.ReplicaReads = true
			default:
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return "", cfg, fmt.Errorf("globaldb driver: bad staleness %q", v)
				}
				cfg.ReplicaReads = true
				cfg.Staleness = d
			}
		default:
			return "", cfg, fmt.Errorf("globaldb driver: unknown DSN option %q", key)
		}
	}
	return name, cfg, nil
}

// Connector produces connections to one cluster with a fixed Config. Use
// with sql.OpenDB.
type Connector struct {
	db  *globaldb.DB
	cfg Config
}

// NewConnector wires an open cluster to database/sql:
// sql.OpenDB(NewConnector(db, cfg)).
func NewConnector(db *globaldb.DB, cfg Config) *Connector {
	return &Connector{db: db, cfg: cfg}
}

// Connect opens one connection: a gsql session homed at the configured
// region, with the configured staleness applied.
func (c *Connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	region := c.cfg.Region
	if region == "" {
		regions := c.db.Regions()
		if len(regions) == 0 {
			return nil, fmt.Errorf("globaldb driver: cluster has no regions")
		}
		region = regions[0]
	}
	sess, err := gsql.Connect(c.db, region)
	if err != nil {
		return nil, err
	}
	if c.cfg.ReplicaReads || c.cfg.Staleness > 0 {
		set := &gsql.SetStaleness{Any: c.cfg.Staleness <= 0, Bound: c.cfg.Staleness}
		if _, err := sess.ExecStmt(ctx, set); err != nil {
			return nil, err
		}
	}
	return &conn{sess: sess}, nil
}

// Driver returns the underlying Driver.
func (c *Connector) Driver() sqldriver.Driver { return Driver{} }

// Open is a convenience for sql.OpenDB(NewConnector(db, cfg)).
func Open(db *globaldb.DB, cfg Config) *sql.DB {
	return sql.OpenDB(NewConnector(db, cfg))
}
