// Package driver implements a database/sql/driver for GlobalDB, making the
// idiomatic Go database surface the front door to the cluster: standard
// connections, parameterized prepared statements whose plans are cached in
// the SQL layer, context-aware queries, transactions, and result rows that
// stream off the paged scan pipeline instead of materializing.
//
// The driver speaks two transports. In process, with a *globaldb.DB in
// hand, build a connector directly or register the cluster under a name:
//
//	db, _ := globaldb.Open(globaldb.ThreeCity())
//	sqldb := sql.OpenDB(driver.NewConnector(db, driver.Config{Region: "xian"}))
//
//	driver.Register("prod", db)
//	sqldb, _ := sql.Open("globaldb", "prod?region=dongguan&staleness=50ms")
//
// Over the network, a tcp:// DSN dials a server (package server) through a
// bounded connection pool — idle connections are reused warmest-first,
// every checkout health-checks the socket, and dials beyond maxconns block
// until a connection frees:
//
//	sqldb, _ := sql.Open("globaldb", "tcp://127.0.0.1:7687?region=xian&maxconns=128")
//
// Both DSN forms (and Config) carry the connection's home region and its
// replica staleness bound. `staleness=any` routes out-of-transaction
// SELECTs to asynchronous replicas at the RCP with no freshness bound; a
// duration like `staleness=50ms` bounds how stale those reads may be;
// omitting it reads shard primaries. `SET STALENESS` works per connection
// at runtime too.
//
// Every connection owns one gsql session, so prepared statements get the
// session's DDL-aware plan cache: executing a prepared statement re-parses
// nothing, and a CREATE/DROP TABLE between executions replans transparently.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"globaldb"
	"globaldb/gsql"
)

func init() { sql.Register("globaldb", Driver{}) }

// Config tunes the connections a Connector produces.
type Config struct {
	// Region is the home region of the session (the computing node the
	// connection talks to). Empty selects the cluster's first region.
	Region string
	// ReplicaReads routes out-of-transaction SELECTs to asynchronous
	// replicas at the RCP with no freshness bound (SET STALENESS = ANY).
	ReplicaReads bool
	// Staleness bounds replica reads: at most this far behind the
	// primaries. A positive value implies ReplicaReads.
	Staleness time.Duration
	// MaxConns bounds the TCP transport's connection pool; checkouts
	// beyond it block until a connection frees. Zero means
	// DefaultMaxConns. Ignored in process.
	MaxConns int
	// MaxIdle caps how many idle TCP connections the pool keeps for
	// reuse. Zero (or a value above MaxConns) keeps up to MaxConns.
	// Ignored in process.
	MaxIdle int
}

// registry maps DSN cluster names to open DBs.
var registry sync.Map // string -> *globaldb.DB

// Register makes an open cluster reachable through sql.Open under the
// given name: sql.Open("globaldb", name+"?region=..."). Registering the
// same name again replaces the previous cluster.
func Register(name string, db *globaldb.DB) { registry.Store(name, db) }

// Unregister removes a named cluster.
func Unregister(name string) { registry.Delete(name) }

// Driver is the database/sql/driver entry point, registered as "globaldb".
type Driver struct{}

// Open connects using a DSN: "name?region=xian&staleness=50ms" where name
// was previously passed to Register.
func (d Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once and returns a reusable connector. A
// "tcp://host:port?opts" DSN dials a network server through the driver's
// bounded connection pool; anything else names a Registered in-process
// cluster.
func (d Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	if addr, ok := strings.CutPrefix(dsn, "tcp://"); ok {
		addr, cfg, err := parseDSN(addr)
		if err != nil {
			return nil, err
		}
		return NewNetConnector(addr, cfg), nil
	}
	name, cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	v, ok := registry.Load(name)
	if !ok {
		return nil, fmt.Errorf("globaldb driver: no cluster registered as %q (call driver.Register)", name)
	}
	return NewConnector(v.(*globaldb.DB), cfg), nil
}

// parseDSN splits "name?opts" and decodes the option query string.
func parseDSN(dsn string) (name string, cfg Config, err error) {
	name, query, _ := strings.Cut(dsn, "?")
	if name == "" {
		return "", cfg, fmt.Errorf("globaldb driver: DSN %q names no cluster", dsn)
	}
	vals, err := url.ParseQuery(query)
	if err != nil {
		return "", cfg, fmt.Errorf("globaldb driver: bad DSN options %q: %v", query, err)
	}
	for key, vv := range vals {
		v := vv[len(vv)-1]
		switch key {
		case "region":
			cfg.Region = v
		case "staleness":
			switch strings.ToLower(v) {
			case "none", "":
				// primary reads, the default
			case "any":
				cfg.ReplicaReads = true
			default:
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return "", cfg, fmt.Errorf("globaldb driver: bad staleness %q", v)
				}
				cfg.ReplicaReads = true
				cfg.Staleness = d
			}
		case "maxconns":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return "", cfg, fmt.Errorf("globaldb driver: bad maxconns %q", v)
			}
			cfg.MaxConns = n
		case "maxidle":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return "", cfg, fmt.Errorf("globaldb driver: bad maxidle %q", v)
			}
			cfg.MaxIdle = n
		default:
			return "", cfg, fmt.Errorf("globaldb driver: unknown DSN option %q", key)
		}
	}
	return name, cfg, nil
}

// Connector produces connections to one cluster with a fixed Config. Use
// with sql.OpenDB.
type Connector struct {
	db  *globaldb.DB
	cfg Config
}

// NewConnector wires an open cluster to database/sql:
// sql.OpenDB(NewConnector(db, cfg)).
func NewConnector(db *globaldb.DB, cfg Config) *Connector {
	return &Connector{db: db, cfg: cfg}
}

// Connect opens one connection: a gsql session homed at the configured
// region, with the configured staleness applied.
func (c *Connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	region := c.cfg.Region
	if region == "" {
		regions := c.db.Regions()
		if len(regions) == 0 {
			return nil, fmt.Errorf("globaldb driver: cluster has no regions")
		}
		region = regions[0]
	}
	sess, err := gsql.Connect(c.db, region)
	if err != nil {
		return nil, err
	}
	if c.cfg.ReplicaReads || c.cfg.Staleness > 0 {
		set := &gsql.SetStaleness{Any: c.cfg.Staleness <= 0, Bound: c.cfg.Staleness}
		if _, err := sess.ExecStmt(ctx, set); err != nil {
			return nil, err
		}
	}
	return &conn{sess: sess}, nil
}

// Driver returns the underlying Driver.
func (c *Connector) Driver() sqldriver.Driver { return Driver{} }

// Open is a convenience for sql.OpenDB(NewConnector(db, cfg)).
func Open(db *globaldb.DB, cfg Config) *sql.DB {
	return sql.OpenDB(NewConnector(db, cfg))
}

// NetConnector produces TCP connections to a network server through the
// driver's bounded connection pool. Use with sql.OpenDB; sql.DB.Close
// closes the pool.
type NetConnector struct {
	pool *connPool
}

// NewNetConnector wires a server address ("host:port") to database/sql
// with the given session options and pool bounds.
func NewNetConnector(addr string, cfg Config) *NetConnector {
	return &NetConnector{pool: newConnPool(addr, cfg)}
}

// Connect checks a wire connection out of the pool — reusing an idle one
// that passes the health check, dialing under the maxconns bound, or
// blocking until a connection frees.
func (c *NetConnector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	wc, err := c.pool.get(ctx)
	if err != nil {
		return nil, err
	}
	return &netConn{pool: c.pool, wc: wc}, nil
}

// Driver returns the underlying Driver.
func (c *NetConnector) Driver() sqldriver.Driver { return Driver{} }

// Close shuts the connection pool down; sql.DB.Close calls it.
func (c *NetConnector) Close() error { return c.pool.Close() }

// PoolStats snapshots the connector's pool: in-use/idle occupancy plus
// lifetime wait and health-check-failure counts. The same figures feed
// the driver_pool_* gauges on the process-wide metrics registry.
func (c *NetConnector) PoolStats() PoolStats { return c.pool.Stats() }
