package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"errors"
	"testing"
	"time"

	"globaldb"
	"globaldb/server"
)

// forEachTransport runs a driver test twice: against the in-process
// connector, and against a TCP server started on an identical cluster. The
// conformance suite must pass unchanged on both — the wire protocol is an
// implementation detail below the database/sql surface.
func forEachTransport(t *testing.T, fn func(t *testing.T, db *globaldb.DB, mk func(Config) sqldriver.Connector)) {
	t.Run("inprocess", func(t *testing.T) {
		db := openCluster(t)
		fn(t, db, func(cfg Config) sqldriver.Connector { return NewConnector(db, cfg) })
	})
	t.Run("tcp", func(t *testing.T) {
		db := openCluster(t)
		srv := server.New(db, server.Options{})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(bg, 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("server shutdown: %v", err)
			}
		})
		addr := srv.Addr().String()
		fn(t, db, func(cfg Config) sqldriver.Connector { return NewNetConnector(addr, cfg) })
	})
}

// openDB wraps a connector as a *sql.DB closed with the test.
func openDB(t *testing.T, c sqldriver.Connector) *sql.DB {
	t.Helper()
	sqldb := sql.OpenDB(c)
	t.Cleanup(func() { sqldb.Close() })
	return sqldb
}

// TestQueryContextCancelMidStream pins the query path's context handling
// on both transports: canceling the context mid-stream must abort the scan
// — close the cursor (in process) or cancel the server-side stream (TCP) —
// and surface ctx.Err() instead of draining the remaining rows. The
// connection stays usable afterwards.
func TestQueryContextCancelMidStream(t *testing.T) {
	forEachTransport(t, func(t *testing.T, db *globaldb.DB, mk func(Config) sqldriver.Connector) {
		sqldb := openDB(t, mk(Config{Region: "xian"}))
		if _, err := sqldb.ExecContext(bg, `CREATE TABLE big (w BIGINT, id BIGINT,
			PRIMARY KEY (w, id)) SHARD BY w`); err != nil {
			t.Fatal(err)
		}
		ins, err := sqldb.PrepareContext(bg, "INSERT INTO big VALUES (?, ?)")
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 1200; i++ {
			if _, err := ins.ExecContext(bg, int64(0), i); err != nil {
				t.Fatal(err)
			}
		}
		ins.Close()

		// Drive the driver interface directly so the cancel lands between
		// two row frames deterministically, without database/sql's own
		// context watcher racing the assertion.
		cn, err := mk(Config{Region: "xian"}).Connect(bg)
		if err != nil {
			t.Fatal(err)
		}
		defer cn.Close()
		ctx, cancel := context.WithCancel(bg)
		rows, err := cn.(sqldriver.QueryerContext).QueryContext(ctx,
			"SELECT id FROM big WHERE w = ?", []sqldriver.NamedValue{{Ordinal: 1, Value: int64(0)}})
		if err != nil {
			t.Fatal(err)
		}
		dest := make([]sqldriver.Value, 1)
		for i := 0; i < 2; i++ {
			if err := rows.Next(dest); err != nil {
				t.Fatalf("row %d: %v", i, err)
			}
		}
		cancel()
		var got error
		n := 0
		for {
			if err := rows.Next(dest); err != nil {
				got = err
				break
			}
			if n++; n > 1200 {
				t.Fatal("canceled query drained the whole table")
			}
		}
		if !errors.Is(got, context.Canceled) {
			t.Fatalf("post-cancel Next returned %v, want context.Canceled", got)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("close after cancel: %v", err)
		}
		// The connection survives the aborted stream.
		if err := cn.(sqldriver.Pinger).Ping(bg); err != nil {
			t.Fatalf("connection unusable after cancel: %v", err)
		}
		res, err := cn.(sqldriver.QueryerContext).QueryContext(bg,
			"SELECT COUNT(*) FROM big", nil)
		if err != nil {
			t.Fatalf("query after cancel: %v", err)
		}
		if err := res.Next(dest); err != nil {
			t.Fatal(err)
		}
		if dest[0] != int64(1200) {
			t.Fatalf("count after cancel = %v, want 1200", dest[0])
		}
		res.Close()
	})
}
