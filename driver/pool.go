package driver

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"globaldb/internal/obs"
)

// DefaultMaxConns bounds a TCP connector's pool when the DSN names no
// maxconns.
const DefaultMaxConns = 64

// Pool occupancy exported on obs.Default. Multiple pools in one process
// fold into the same gauges; each pool publishes deltas under its own
// lock so the totals stay exact.
var (
	poolInUse       = obs.Default.Gauge("driver_pool_in_use")
	poolIdle        = obs.Default.Gauge("driver_pool_idle")
	poolWaits       = obs.Default.Counter("driver_pool_wait_total")
	poolHealthFails = obs.Default.Counter("driver_pool_health_check_failures_total")
)

// connPool is the driver's bounded TCP connection pool. database/sql pools
// its own driver.Conns, but its limits are per *sql.DB and its pool knows
// nothing about transport health; this pool is the transport-level cache
// under it — idle wire connections are reused LIFO (warmest first), every
// checkout health-checks the socket, checkouts beyond maxOpen block until
// a connection frees, and checkins reset server-side session state left by
// the previous user.
type connPool struct {
	addr    string
	cfg     Config
	maxOpen int
	maxIdle int

	mu      sync.Mutex
	idle    []*wireClient // LIFO: last returned, first reused
	numOpen int           // dialed and not yet closed (checked out + idle)
	waiters []chan *wireClient
	closed  bool

	// pubInUse/pubIdle are the occupancy figures last published to the
	// shared obs gauges; publishLocked Adds the delta so several pools
	// aggregate correctly.
	pubInUse, pubIdle int64

	waits       atomic.Int64 // checkouts that had to queue for a slot
	healthFails atomic.Int64 // checkouts that discarded an unhealthy conn
}

// publishLocked pushes the pool's current occupancy to the shared obs
// gauges as a delta against what it last published. Callers hold p.mu.
func (p *connPool) publishLocked() {
	inUse := int64(p.numOpen - len(p.idle))
	idle := int64(len(p.idle))
	poolInUse.Add(inUse - p.pubInUse)
	poolIdle.Add(idle - p.pubIdle)
	p.pubInUse, p.pubIdle = inUse, idle
}

// observeHealthFail counts one discarded-unhealthy-connection event.
func (p *connPool) observeHealthFail() {
	p.healthFails.Add(1)
	poolHealthFails.Inc()
}

// PoolStats is a point-in-time read of a pool's occupancy and lifetime
// contention counters.
type PoolStats struct {
	// InUse counts connections currently checked out; Idle counts parked
	// connections ready for reuse.
	InUse, Idle int
	// WaitCount is how many checkouts found the pool at maxOpen and had
	// to queue for a free slot.
	WaitCount int64
	// HealthCheckFailures is how many checkouts discarded a connection
	// whose socket failed the health probe.
	HealthCheckFailures int64
}

// Stats snapshots the pool.
func (p *connPool) Stats() PoolStats {
	p.mu.Lock()
	open, idle := p.numOpen, len(p.idle)
	p.mu.Unlock()
	return PoolStats{
		InUse:               open - idle,
		Idle:                idle,
		WaitCount:           p.waits.Load(),
		HealthCheckFailures: p.healthFails.Load(),
	}
}

var errPoolClosed = errors.New("globaldb driver: connection pool is closed")

func newConnPool(addr string, cfg Config) *connPool {
	maxOpen := cfg.MaxConns
	if maxOpen <= 0 {
		maxOpen = DefaultMaxConns
	}
	maxIdle := cfg.MaxIdle
	if maxIdle <= 0 || maxIdle > maxOpen {
		maxIdle = maxOpen
	}
	return &connPool{addr: addr, cfg: cfg, maxOpen: maxOpen, maxIdle: maxIdle}
}

// get checks a connection out: an idle one that passes the health check,
// a fresh dial while under maxOpen, or a blocking wait for a checkin.
func (p *connPool) get(ctx context.Context) (*wireClient, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errPoolClosed
		}
		if n := len(p.idle); n > 0 {
			wc := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.publishLocked()
			p.mu.Unlock()
			if wc.healthy() {
				return wc, nil
			}
			p.observeHealthFail()
			wc.close()
			p.release()
			continue
		}
		if p.numOpen < p.maxOpen {
			p.numOpen++
			p.publishLocked()
			p.mu.Unlock()
			wc, err := dialWire(ctx, p.addr, p.cfg)
			if err != nil {
				p.release()
				return nil, err
			}
			return wc, nil
		}
		ch := make(chan *wireClient, 1)
		p.waiters = append(p.waiters, ch)
		p.waits.Add(1)
		poolWaits.Inc()
		p.mu.Unlock()
		select {
		case wc := <-ch:
			if wc == nil {
				continue // a slot freed (or the pool closed); retry
			}
			if wc.healthy() {
				return wc, nil
			}
			p.observeHealthFail()
			wc.close()
			p.release()
			continue
		case <-ctx.Done():
			p.mu.Lock()
			removed := false
			for i, w := range p.waiters {
				if w == ch {
					p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
					removed = true
					break
				}
			}
			p.mu.Unlock()
			if !removed {
				// A handoff raced the cancellation; pass it on.
				if wc := <-ch; wc != nil {
					p.put(wc)
				} else {
					p.wakeOne()
				}
			}
			return nil, ctx.Err()
		}
	}
}

// put checks a connection back in: hand it to a waiter, park it idle, or —
// when broken, dirty beyond repair, or surplus — close it and free the
// slot.
func (p *connPool) put(wc *wireClient) {
	if wc.broken {
		wc.close()
		p.release()
		return
	}
	if wc.inTxn {
		// The previous user abandoned a transaction; roll it back
		// server-side before anyone reuses the session.
		if err := wc.reset(); err != nil {
			wc.close()
			p.release()
			return
		}
	}
	p.mu.Lock()
	if p.closed {
		p.numOpen--
		p.publishLocked()
		p.mu.Unlock()
		wc.close()
		return
	}
	if len(p.waiters) > 0 {
		ch := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.mu.Unlock()
		ch <- wc
		return
	}
	if len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, wc)
		p.publishLocked()
		p.mu.Unlock()
		return
	}
	p.numOpen--
	p.publishLocked()
	p.mu.Unlock()
	wc.close()
}

// release frees one open slot and wakes a waiter to retry (dial or grab
// idle).
func (p *connPool) release() {
	p.mu.Lock()
	p.numOpen--
	p.publishLocked()
	p.mu.Unlock()
	p.wakeOne()
}

func (p *connPool) wakeOne() {
	p.mu.Lock()
	var ch chan *wireClient
	if len(p.waiters) > 0 {
		ch = p.waiters[0]
		p.waiters = p.waiters[1:]
	}
	p.mu.Unlock()
	if ch != nil {
		ch <- nil
	}
}

// Close closes the idle connections and fails waiters; checked-out
// connections close as they come back.
func (p *connPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	waiters := p.waiters
	p.waiters = nil
	p.numOpen -= len(idle)
	p.publishLocked()
	p.mu.Unlock()
	for _, wc := range idle {
		wc.close()
	}
	for _, ch := range waiters {
		close(ch)
	}
	return nil
}

// stats reports the pool's current occupancy (tests and debugging).
func (p *connPool) stats() (open, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numOpen, len(p.idle)
}
